//! # repmem-linalg
//!
//! The small, self-contained linear-algebra core needed by the analytic
//! steady-state model: dense Gaussian elimination, sparse CSR matrices,
//! and stationary-distribution solvers for finite Markov chains.
//!
//! The paper's performance model reduces every protocol × workload pair to
//! a finite ergodic Markov chain over global copy-states; the average
//! communication cost per operation is an expectation under that chain's
//! stationary distribution. `nalgebra` is not part of this workspace's
//! approved offline dependency set, so the required kernels are
//! implemented here directly (see DESIGN.md §2).

pub mod csr;
pub mod dense;
pub mod stationary;

pub use csr::{Csr, Triplets};
pub use dense::Dense;
pub use stationary::{stationary_dense, stationary_power, StationaryError, StationaryOpts};

/// Numerical error type shared by the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The system matrix is singular (to working precision).
    Singular,
    /// Dimension mismatch between operands.
    DimensionMismatch {
        /// Dimension the operation required.
        expected: usize,
        /// Dimension actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
