//! Stationary distributions of finite Markov chains.
//!
//! A chain is given as a row-stochastic transition matrix `P`; the
//! stationary distribution `π` satisfies `π·P = π`, `Σπ = 1`, `π ≥ 0`.
//! Two solvers are provided:
//!
//! * [`stationary_power`] — damped power iteration on sparse CSR chains.
//!   Iterating the *lazy* chain `(I + P)/2` has the same stationary
//!   distribution and is aperiodic by construction, so the iteration
//!   converges for every chain with a single recurrent class reachable
//!   from the initial mass.
//! * [`stationary_dense`] — direct solve of `(Pᵀ − I)π = 0` with the
//!   normalization row for small dense chains; used as ground truth in
//!   tests and for chains with poor spectral gaps.

use crate::{Csr, Dense, LinalgError};

/// Options for the power-iteration solver.
#[derive(Debug, Clone, Copy)]
pub struct StationaryOpts {
    /// L1 convergence tolerance between successive iterates.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for StationaryOpts {
    fn default() -> Self {
        StationaryOpts {
            tol: 1e-14,
            max_iter: 200_000,
        }
    }
}

/// Errors from the stationary solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum StationaryError {
    /// The matrix is not square.
    NotSquare,
    /// A row does not sum to 1 (not a stochastic matrix).
    NotStochastic {
        /// Offending row.
        row: usize,
        /// Its sum.
        sum: f64,
    },
    /// Power iteration did not reach tolerance within the iteration cap.
    NoConvergence {
        /// Final L1 difference between iterates.
        residual: f64,
    },
    /// The dense solve failed (multiple recurrent classes make the system
    /// singular).
    Linalg(LinalgError),
}

impl std::fmt::Display for StationaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StationaryError::NotSquare => write!(f, "transition matrix is not square"),
            StationaryError::NotStochastic { row, sum } => {
                write!(f, "row {row} sums to {sum}, expected 1")
            }
            StationaryError::NoConvergence { residual } => {
                write!(f, "power iteration stalled at L1 residual {residual}")
            }
            StationaryError::Linalg(e) => write!(f, "dense stationary solve failed: {e}"),
        }
    }
}

impl std::error::Error for StationaryError {}

fn check_stochastic_rows(sums: &[f64]) -> Result<(), StationaryError> {
    for (row, &sum) in sums.iter().enumerate() {
        if (sum - 1.0).abs() > 1e-8 {
            return Err(StationaryError::NotStochastic { row, sum });
        }
    }
    Ok(())
}

/// Stationary distribution of a sparse row-stochastic chain by damped
/// power iteration, starting from the uniform distribution.
pub fn stationary_power(p: &Csr, opts: StationaryOpts) -> Result<Vec<f64>, StationaryError> {
    let n = p.n_rows();
    if p.n_cols() != n {
        return Err(StationaryError::NotSquare);
    }
    check_stochastic_rows(&p.row_sums())?;
    let mut x = vec![1.0 / n as f64; n];
    let mut y = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for _ in 0..opts.max_iter {
        p.left_mul_into(&x, &mut y);
        // Lazy-chain step: x' = (x + x·P)/2, renormalized to guard
        // against floating-point drift.
        let mut norm = 0.0;
        for (yi, xi) in y.iter_mut().zip(&x) {
            *yi = 0.5 * (*yi + *xi);
            norm += *yi;
        }
        let inv = 1.0 / norm;
        residual = 0.0;
        for (xi, yi) in x.iter_mut().zip(&mut y) {
            *yi *= inv;
            residual += (*yi - *xi).abs();
            *xi = *yi;
        }
        if residual < opts.tol {
            return Ok(x);
        }
    }
    Err(StationaryError::NoConvergence { residual })
}

/// Stationary distribution of a dense row-stochastic chain by direct
/// linear solve: replace the last equation of `(Pᵀ − I)π = 0` with the
/// normalization `Σπ = 1`.
pub fn stationary_dense(p: &Dense) -> Result<Vec<f64>, StationaryError> {
    let n = p.rows();
    if p.cols() != n {
        return Err(StationaryError::NotSquare);
    }
    let sums: Vec<f64> = (0..n).map(|i| p.row(i).iter().sum()).collect();
    check_stochastic_rows(&sums)?;
    let mut a = p.transpose();
    for i in 0..n {
        a[(i, i)] -= 1.0;
    }
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let pi = a.solve(&b).map_err(StationaryError::Linalg)?;
    Ok(pi)
}

/// L1 residual `‖π·P − π‖₁`, for verifying a candidate distribution.
pub fn residual(p: &Csr, pi: &[f64]) -> f64 {
    let mut y = vec![0.0; pi.len()];
    p.left_mul_into(pi, &mut y);
    y.iter().zip(pi).map(|(a, b)| (a - b).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn two_state(alpha: f64, beta: f64) -> Csr {
        // 0 -> 1 with prob alpha; 1 -> 0 with prob beta.
        let mut t = Triplets::new(2, 2);
        t.add(0, 0, 1.0 - alpha);
        t.add(0, 1, alpha);
        t.add(1, 0, beta);
        t.add(1, 1, 1.0 - beta);
        t.build()
    }

    #[test]
    fn two_state_closed_form() {
        let (alpha, beta) = (0.3, 0.7);
        let p = two_state(alpha, beta);
        let pi = stationary_power(&p, StationaryOpts::default()).unwrap();
        // π = (β, α)/(α+β).
        assert!((pi[0] - beta / (alpha + beta)).abs() < 1e-10);
        assert!((pi[1] - alpha / (alpha + beta)).abs() < 1e-10);
        assert!(residual(&p, &pi) < 1e-10);
    }

    #[test]
    fn periodic_chain_converges_via_lazy_damping() {
        // Pure alternation 0 <-> 1: period 2; undamped iteration from a
        // non-uniform start would oscillate.
        let p = two_state(1.0, 1.0);
        let pi = stationary_power(&p, StationaryOpts::default()).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn dense_matches_power() {
        let p = two_state(0.2, 0.05);
        let pd = stationary_dense(&p.to_dense()).unwrap();
        let pp = stationary_power(&p, StationaryOpts::default()).unwrap();
        for (a, b) in pd.iter().zip(&pp) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_states_get_zero_mass() {
        // 0 -> 1 always; 1 -> 1. State 0 is transient.
        let mut t = Triplets::new(2, 2);
        t.add(0, 1, 1.0);
        t.add(1, 1, 1.0);
        let p = t.build();
        let pi = stationary_power(&p, StationaryOpts::default()).unwrap();
        assert!(pi[0] < 1e-9);
        assert!((pi[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_stochastic() {
        let mut t = Triplets::new(2, 2);
        t.add(0, 0, 0.5);
        t.add(1, 1, 1.0);
        let p = t.build();
        assert!(matches!(
            stationary_power(&p, StationaryOpts::default()),
            Err(StationaryError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn identity_chain_keeps_uniform_start() {
        // Every state absorbing: the start vector is already stationary.
        let mut t = Triplets::new(3, 3);
        for i in 0..3 {
            t.add(i, i, 1.0);
        }
        let pi = stationary_power(&t.build(), StationaryOpts::default()).unwrap();
        for v in pi {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::Triplets;
    use rand::{Rng, SeedableRng};

    fn random_stochastic(n: usize, rng: &mut rand::rngs::StdRng) -> Csr {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            let row: Vec<f64> = (0..n).map(|_| 0.01 + 0.99 * rng.random::<f64>()).collect();
            let sum: f64 = row.iter().sum();
            for (j, &v) in row.iter().enumerate() {
                t.add(i, j, v / sum);
            }
        }
        t.build()
    }

    /// Deterministic replacement for the former property test: 256 seeded
    /// random fully-dense stochastic matrices, power vs dense solver.
    #[test]
    fn power_agrees_with_dense() {
        for seed in 0u64..256 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0x57A7 ^ seed);
            let p = random_stochastic(4, &mut rng);
            let pp = stationary_power(&p, StationaryOpts::default()).unwrap();
            let pd = stationary_dense(&p.to_dense()).unwrap();
            let sum: f64 = pp.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10, "seed {seed}: Σπ = {sum}");
            for (a, b) in pp.iter().zip(&pd) {
                assert!((a - b).abs() < 1e-8, "seed {seed}: power {a} vs dense {b}");
            }
            assert!(residual(&p, &pp) < 1e-10, "seed {seed}");
        }
    }
}
