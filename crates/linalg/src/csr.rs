//! Compressed-sparse-row matrices built from coordinate triplets.

/// Accumulator of `(row, col, value)` triplets; duplicate coordinates are
/// summed when the matrix is compressed.
#[derive(Debug, Clone)]
pub struct Triplets {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Triplets {
    /// New accumulator for an `n_rows × n_cols` matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Triplets {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Record `A[i][j] += v`. Zero values are skipped.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.n_rows && j < self.n_cols);
        if v != 0.0 {
            self.entries.push((i as u32, j as u32, v));
        }
    }

    /// Number of recorded (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compress into CSR form, summing duplicates.
    pub fn build(mut self) -> Csr {
        self.entries.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut counts = vec![0usize; self.n_rows];
        let mut iter = self.entries.into_iter().peekable();
        while let Some((i, j, mut v)) = iter.next() {
            while let Some(&(i2, j2, v2)) = iter.peek() {
                if i2 == i && j2 == j {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            col_idx.push(j);
            vals.push(v);
            counts[i as usize] += 1;
        }
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        for r in 0..self.n_rows {
            row_ptr[r + 1] = row_ptr[r] + counts[r];
        }
        Csr {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            col_idx,
            vals,
        }
    }
}

/// An immutable CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl Csr {
    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Iterate the non-zeros of row `i` as `(col, value)`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.vals[lo..hi])
            .map(|(&j, &v)| (j as usize, v))
    }

    /// `y = x·A` (row vector times matrix), accumulating into `y`, which
    /// is zeroed first.
    pub fn left_mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_rows, "x length must equal row count");
        assert_eq!(y.len(), self.n_cols, "y length must equal column count");
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for (k, &j) in self.col_idx[lo..hi].iter().enumerate() {
                y[j as usize] += xi * self.vals[lo + k];
            }
        }
    }

    /// Sum of each row (for a transition matrix these must all be 1).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|i| self.row(i).map(|(_, v)| v).sum())
            .collect()
    }

    /// Expand into a dense matrix (test/diagnostic helper; avoid on large
    /// chains).
    pub fn to_dense(&self) -> crate::Dense {
        let mut d = crate::Dense::zeros(self.n_rows, self.n_cols);
        for i in 0..self.n_rows {
            for (j, v) in self.row(i) {
                d[(i, j)] += v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_iterate() {
        let mut t = Triplets::new(3, 3);
        t.add(0, 1, 2.0);
        t.add(2, 0, 5.0);
        t.add(0, 1, 3.0); // duplicate: summed
        t.add(1, 1, 1.0);
        let m = t.build();
        assert_eq!(m.nnz(), 3);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(1, 5.0)]);
        let row2: Vec<_> = m.row(2).collect();
        assert_eq!(row2, vec![(0, 5.0)]);
    }

    #[test]
    fn empty_rows_are_skipped() {
        let mut t = Triplets::new(4, 4);
        t.add(3, 3, 1.0);
        let m = t.build();
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).count(), 0);
        assert_eq!(m.row(3).count(), 1);
    }

    #[test]
    fn zero_values_dropped() {
        let mut t = Triplets::new(2, 2);
        t.add(0, 0, 0.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let m = t.build();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn left_mul_matches_dense() {
        let mut t = Triplets::new(2, 3);
        t.add(0, 0, 1.0);
        t.add(0, 2, 2.0);
        t.add(1, 1, 3.0);
        let m = t.build();
        let mut y = vec![0.0; 3];
        m.left_mul_into(&[2.0, 4.0], &mut y);
        assert_eq!(y, vec![2.0, 12.0, 4.0]);
        let d = m.to_dense();
        assert_eq!(d.left_mul(&[2.0, 4.0]).unwrap(), y);
    }

    #[test]
    fn row_sums() {
        let mut t = Triplets::new(2, 2);
        t.add(0, 0, 0.25);
        t.add(0, 1, 0.75);
        t.add(1, 0, 1.0);
        let m = t.build();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-15);
        assert!((sums[1] - 1.0).abs() < 1e-15);
    }
}
