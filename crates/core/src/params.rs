//! System-level parameters of the distributed shared memory model.

use crate::ids::NodeId;
use crate::message::PayloadKind;
use serde::{Deserialize, Serialize};

/// Static parameters of the distributed system and its cost model
/// (paper Table 5, system part).
///
/// * `n_clients` — `N`, the number of client nodes; the system has `N+1`
///   nodes in total (clients `0..N` plus the home sequencer, node `N`).
/// * `s` — `S`, the communication cost of transmitting the user-information
///   part of a copy (a whole-object transfer costs `S+1` including the
///   message token).
/// * `p` — `P`, the communication cost of transmitting write-operation
///   parameters (a parameter-carrying message costs `P+1`).
/// * `m_objects` — `M`, the number of disjoint shared objects the global
///   address space is decomposed into. The analytic model treats objects
///   independently, so `M` only matters to the simulator and runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemParams {
    /// `N` — number of client nodes.
    pub n_clients: usize,
    /// `S` — cost of shipping the user-information part of a copy.
    pub s: u64,
    /// `P` — cost of shipping write-operation parameters.
    pub p: u64,
    /// `M` — number of shared objects.
    pub m_objects: usize,
}

impl SystemParams {
    /// Convenience constructor for a single-object system.
    pub fn new(n_clients: usize, s: u64, p: u64) -> Self {
        Self {
            n_clients,
            s,
            p,
            m_objects: 1,
        }
    }

    /// Total number of nodes, `N + 1`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_clients + 1
    }

    /// The home sequencer's node id (the paper's node `N+1`; zero-based
    /// here as node `N`).
    #[inline]
    pub fn home(&self) -> NodeId {
        NodeId(self.n_clients as u16)
    }

    /// Iterator over all client node ids (`0..N`).
    pub fn clients(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_clients as u16).map(NodeId)
    }

    /// Communication cost of a single **inter-node** message carrying the
    /// given parameter presence (paper §4.1). Intra-node deliveries cost
    /// zero and must be filtered out by the caller.
    #[inline]
    pub fn msg_cost(&self, payload: PayloadKind) -> u64 {
        match payload {
            PayloadKind::Token => 1,
            PayloadKind::Params => self.p + 1,
            PayloadKind::Copy => self.s + 1,
        }
    }

    /// The paper's Figure 5/6 configuration: `N=50, a=10, P=30, S=5000`
    /// (`a` lives in the workload scenario, not here).
    pub fn figure5() -> Self {
        Self::new(50, 5000, 30)
    }

    /// The paper's Table 7 configuration: `N=3, P=30, S=100, M=20`.
    pub fn table7() -> Self {
        Self {
            n_clients: 3,
            s: 100,
            p: 30,
            m_objects: 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology() {
        let sys = SystemParams::new(4, 100, 30);
        assert_eq!(sys.n_nodes(), 5);
        assert_eq!(sys.home(), NodeId(4));
        let clients: Vec<_> = sys.clients().collect();
        assert_eq!(clients, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(!clients.contains(&sys.home()));
    }

    #[test]
    fn message_costs_match_paper() {
        let sys = SystemParams::new(3, 100, 30);
        assert_eq!(sys.msg_cost(PayloadKind::Token), 1);
        assert_eq!(sys.msg_cost(PayloadKind::Params), 31);
        assert_eq!(sys.msg_cost(PayloadKind::Copy), 101);
    }

    #[test]
    fn preset_configurations() {
        let f = SystemParams::figure5();
        assert_eq!((f.n_clients, f.s, f.p), (50, 5000, 30));
        let t = SystemParams::table7();
        assert_eq!((t.n_clients, t.s, t.p, t.m_objects), (3, 100, 30, 20));
    }
}
