//! The five-parameter stochastic workload model (paper §4.2).
//!
//! The workload is a collection of processes behaving in stochastic steady
//! state. Each shared-memory operation is an independent trial drawn from
//! a sample space of *(node, read/write)* events; the paper characterizes
//! workloads as deviations from an **ideal** workload (every object
//! accessed at exactly one node, its *activity center*):
//!
//! * **read disturbance** — the activity center reads (prob. `1-p-aσ`) and
//!   writes (prob. `p`); each of `a` other clients reads with prob. `σ`;
//! * **write disturbance** — the activity center reads (prob. `1-p-aξ`)
//!   and writes (`p`); each of `a` other clients writes with prob. `ξ`;
//! * **multiple activity centers** — `β` clients each read with prob.
//!   `(1-p)/β` and write with prob. `p/β`.
//!
//! [`Scenario`] generalizes all of these to an arbitrary list of
//! [`ActorSpec`]s, which both the analytic engine and the synthetic
//! workload generators consume.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Probability-comparison tolerance used when validating scenarios.
const PROB_EPS: f64 = 1e-9;

/// Snap floating-point dust to an exact zero (e.g. `1 − p − aσ` at a
/// simplex corner evaluating to −5.5e-17).
fn snap(p: f64) -> f64 {
    if p.abs() < PROB_EPS {
        0.0
    } else {
        p
    }
}

/// Kind of a shared-memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// A read of the shared object.
    Read,
    /// A write to the shared object.
    Write,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        })
    }
}

/// One participating node and its per-trial read/write probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActorSpec {
    /// The node issuing the operations.
    pub node: NodeId,
    /// Probability that a trial is a read by this node.
    pub read_prob: f64,
    /// Probability that a trial is a write by this node.
    pub write_prob: f64,
}

impl ActorSpec {
    /// Total per-trial activity of this actor.
    #[inline]
    pub fn total(&self) -> f64 {
        self.read_prob + self.write_prob
    }
}

/// Errors from scenario validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A probability was negative or greater than one.
    ProbabilityOutOfRange(f64),
    /// The event probabilities do not sum to one.
    DoesNotSumToOne(f64),
    /// The same node appears in two actor specs.
    DuplicateNode(NodeId),
    /// The scenario has no actors.
    Empty,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::ProbabilityOutOfRange(p) => {
                write!(f, "probability {p} out of [0,1]")
            }
            ScenarioError::DoesNotSumToOne(s) => {
                write!(f, "event probabilities sum to {s}, expected 1")
            }
            ScenarioError::DuplicateNode(n) => write!(f, "node {n} listed twice"),
            ScenarioError::Empty => write!(f, "scenario has no actors"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A complete sample-space description: which nodes access the object and
/// with what per-trial probabilities. Probabilities over all actors sum
/// to one (each trial is exactly one operation somewhere in the system).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Participating nodes. Nodes not listed never access the object.
    pub actors: Vec<ActorSpec>,
}

impl Scenario {
    /// Validate and build a scenario from raw actor specs.
    pub fn new(actors: Vec<ActorSpec>) -> Result<Self, ScenarioError> {
        if actors.is_empty() {
            return Err(ScenarioError::Empty);
        }
        let mut sum = 0.0;
        for a in &actors {
            for p in [a.read_prob, a.write_prob] {
                if !(0.0..=1.0 + PROB_EPS).contains(&p) {
                    return Err(ScenarioError::ProbabilityOutOfRange(p));
                }
            }
            sum += a.total();
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ScenarioError::DoesNotSumToOne(sum));
        }
        let mut nodes: Vec<NodeId> = actors.iter().map(|a| a.node).collect();
        nodes.sort_unstable();
        for w in nodes.windows(2) {
            if w[0] == w[1] {
                return Err(ScenarioError::DuplicateNode(w[0]));
            }
        }
        Ok(Scenario { actors })
    }

    /// **Ideal workload**: only the activity center (client 0) accesses the
    /// object — writes with probability `p`, reads otherwise.
    pub fn ideal(p: f64) -> Result<Self, ScenarioError> {
        Scenario::new(vec![ActorSpec {
            node: NodeId(0),
            read_prob: snap(1.0 - p),
            write_prob: p,
        }])
    }

    /// **Read disturbance** (paper §4.2): the activity center (client 0)
    /// writes with probability `p` and reads with probability `1-p-aσ`;
    /// each of the `a` clients `1..=a` reads with probability `σ`
    /// (homogeneous case).
    pub fn read_disturbance(p: f64, sigma: f64, a: usize) -> Result<Self, ScenarioError> {
        let mut actors = vec![ActorSpec {
            node: NodeId(0),
            read_prob: snap(1.0 - p - a as f64 * sigma),
            write_prob: p,
        }];
        actors.extend((1..=a).map(|k| ActorSpec {
            node: NodeId(k as u16),
            read_prob: sigma,
            write_prob: 0.0,
        }));
        Scenario::new(actors)
    }

    /// **Write disturbance** (paper §4.2): the activity center (client 0)
    /// writes with probability `p` and reads with probability `1-p-aξ`;
    /// each of the `a` clients `1..=a` writes with probability `ξ`
    /// (homogeneous case).
    pub fn write_disturbance(p: f64, xi: f64, a: usize) -> Result<Self, ScenarioError> {
        let mut actors = vec![ActorSpec {
            node: NodeId(0),
            read_prob: snap(1.0 - p - a as f64 * xi),
            write_prob: p,
        }];
        actors.extend((1..=a).map(|k| ActorSpec {
            node: NodeId(k as u16),
            read_prob: 0.0,
            write_prob: xi,
        }));
        Scenario::new(actors)
    }

    /// **Multiple activity centers** (paper §4.2, homogeneous case): `β`
    /// clients (`0..β`), each writing with probability `p/β` and reading
    /// with probability `(1-p)/β`, so the total write probability is `p`.
    pub fn multiple_centers(p: f64, beta: usize) -> Result<Self, ScenarioError> {
        assert!(beta > 0, "multiple_centers requires at least one center");
        let b = beta as f64;
        Scenario::new(
            (0..beta)
                .map(|k| ActorSpec {
                    node: NodeId(k as u16),
                    read_prob: (1.0 - p) / b,
                    write_prob: p / b,
                })
                .collect(),
        )
    }

    /// Total steady-state write probability across all actors.
    pub fn total_write_prob(&self) -> f64 {
        self.actors.iter().map(|a| a.write_prob).sum()
    }

    /// Highest client index used, for sizing a [`crate::SystemParams`].
    pub fn max_node(&self) -> NodeId {
        self.actors
            .iter()
            .map(|a| a.node)
            .max()
            .expect("scenario is non-empty")
    }

    /// Enumerate the sample space as `(node, op, probability)` triples,
    /// omitting zero-probability events.
    pub fn events(&self) -> impl Iterator<Item = (NodeId, OpKind, f64)> + '_ {
        self.actors.iter().flat_map(|a| {
            [
                (a.node, OpKind::Read, a.read_prob),
                (a.node, OpKind::Write, a.write_prob),
            ]
            .into_iter()
            .filter(|&(_, _, p)| p > 0.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_disturbance_probabilities() {
        let s = Scenario::read_disturbance(0.2, 0.05, 4).unwrap();
        assert_eq!(s.actors.len(), 5);
        let ac = &s.actors[0];
        assert!((ac.read_prob - (1.0 - 0.2 - 4.0 * 0.05)).abs() < 1e-12);
        assert!((ac.write_prob - 0.2).abs() < 1e-12);
        assert!((s.total_write_prob() - 0.2).abs() < 1e-12);
        let total: f64 = s.events().map(|(_, _, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn write_disturbance_probabilities() {
        let s = Scenario::write_disturbance(0.1, 0.05, 2).unwrap();
        assert!((s.total_write_prob() - (0.1 + 2.0 * 0.05)).abs() < 1e-12);
        assert_eq!(s.actors[1].read_prob, 0.0);
    }

    #[test]
    fn multiple_centers_probabilities() {
        let s = Scenario::multiple_centers(0.3, 3).unwrap();
        assert_eq!(s.actors.len(), 3);
        for a in &s.actors {
            assert!((a.write_prob - 0.1).abs() < 1e-12);
            assert!((a.read_prob - 0.7 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_oversubscribed() {
        // p + aσ > 1 makes the activity-center read probability negative.
        assert!(matches!(
            Scenario::read_disturbance(0.9, 0.2, 3),
            Err(ScenarioError::ProbabilityOutOfRange(_))
        ));
    }

    #[test]
    fn rejects_duplicates_and_bad_sums() {
        let dup = vec![
            ActorSpec {
                node: NodeId(1),
                read_prob: 0.5,
                write_prob: 0.0,
            },
            ActorSpec {
                node: NodeId(1),
                read_prob: 0.5,
                write_prob: 0.0,
            },
        ];
        assert!(matches!(
            Scenario::new(dup),
            Err(ScenarioError::DuplicateNode(_))
        ));
        let short = vec![ActorSpec {
            node: NodeId(0),
            read_prob: 0.5,
            write_prob: 0.0,
        }];
        assert!(matches!(
            Scenario::new(short),
            Err(ScenarioError::DoesNotSumToOne(_))
        ));
        assert!(matches!(Scenario::new(vec![]), Err(ScenarioError::Empty)));
    }

    #[test]
    fn ideal_is_single_actor() {
        let s = Scenario::ideal(0.25).unwrap();
        assert_eq!(s.actors.len(), 1);
        assert_eq!(s.max_node(), NodeId(0));
        // Ideal with p=0 has a zero-probability write event that must be
        // omitted from the sample space.
        let s0 = Scenario::ideal(0.0).unwrap();
        assert_eq!(s0.events().count(), 1);
    }
}
