//! The Mealy-machine formalism for coherence protocols (paper §3).
//!
//! Every replica of a shared object is controlled by a protocol process
//! implemented as a Mealy machine `MM = (Q, Σ, Ω, δ, λ, q0)`:
//!
//! * `Q` — the states of the copy ([`CopyState`]),
//! * `Σ` — the message tokens ([`crate::Msg`]),
//! * `Ω` — output routines, concatenations of seven simple functions
//!   (`pop`, `push`, `except`, `change`, `return`, `disable`, `enable`)
//!   exposed as the [`Actions`] host interface,
//! * `δ`/`λ` — combined in [`CoherenceProtocol::step`], which consumes one
//!   input token, performs the output routine through [`Actions`], and
//!   returns the successor state.
//!
//! One trait object serves three hosts — the synchronous analytic oracle,
//! the discrete-event simulator, and the threaded runtime — so the analytic
//! model is faithful to the executable protocol **by construction**.

use crate::ids::NodeId;
use crate::message::{Msg, MsgKind, PayloadKind};
use serde::{Deserialize, Serialize};

/// Whether a protocol process currently plays the client or the sequencer
/// role for its object.
///
/// For most protocols the sequencer is the fixed home node; for Berkeley
/// and Dragon the sequencer role migrates with ownership (paper
/// Appendix A), so the role is a function of the `owner` register rather
/// than of the node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// An ordinary client protocol process.
    Client,
    /// The process performing global sequential filtering for the object.
    Sequencer,
}

/// State of one copy of a shared object — the union of the state sets used
/// by the eight protocols (paper Fig. 1 and Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CopyState {
    /// The copy may be stale; reads must re-fetch.
    Invalid,
    /// The copy is readable (possibly shared with other nodes).
    Valid,
    /// Write-Once: written through exactly once; a further local write
    /// makes it dirty without another write-through.
    Reserved,
    /// The only up-to-date copy; local reads and writes are free.
    Dirty,
    /// Dragon: a reader's copy, kept coherent by update broadcasts.
    SharedClean,
    /// Dragon/Berkeley: the owner's copy while other copies may exist.
    SharedDirty,
    /// Sequencer-only transient state: a recall of a dirty copy is in
    /// flight and further requests are answered with RETRY. Not drawn in
    /// the paper's diagrams (its serialized analysis never observes it),
    /// but required to serialize concurrent recalls correctly.
    Recalling,
    /// Quorum transient state: phase 1 of an SC-ABD round — this node
    /// initiated an operation and is collecting Q-VOTE version replies
    /// from its peers. The local copy may be stale until the round
    /// commits, so the state is not readable.
    Querying,
    /// Quorum transient state: phase 2 of an SC-ABD round — the
    /// initiator has the winning version and is collecting Q-ACKs for
    /// its commit wave.
    Committing,
}

impl CopyState {
    /// Uppercase name as used in the paper's tables and diagrams.
    pub fn name(self) -> &'static str {
        match self {
            CopyState::Invalid => "INVALID",
            CopyState::Valid => "VALID",
            CopyState::Reserved => "RESERVED",
            CopyState::Dirty => "DIRTY",
            CopyState::SharedClean => "SHARED-CLEAN",
            CopyState::SharedDirty => "SHARED-DIRTY",
            CopyState::Recalling => "RECALLING",
            CopyState::Querying => "QUERYING",
            CopyState::Committing => "COMMITTING",
        }
    }

    /// Whether a local read can be satisfied from this copy without
    /// communication.
    #[inline]
    pub fn readable(self) -> bool {
        !matches!(
            self,
            CopyState::Invalid | CopyState::Recalling | CopyState::Querying | CopyState::Committing
        )
    }
}

/// Destination of a `push` output action.
///
/// The paper composes `push` with `except(address-list)`; the only
/// exclusion lists the eight protocols need are "all but me" and "all but
/// me and one other node", so the list is capped at two entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// Send to exactly one node.
    To(NodeId),
    /// Send to every node except the listed ones (`push ∘ except`).
    AllExcept(NodeId, Option<NodeId>),
}

/// The host interface through which a protocol machine's output routines
/// act on the world — the paper's seven simple functions plus the
/// identity/topology and ownership registers the adapted protocols need.
///
/// `pop` is implicit: the payload of the message being processed is the
/// "current context"; [`Actions::change`] applies context write
/// parameters to the local replica and [`Actions::install`] replaces the
/// local replica with a context-carried copy.
pub trait Actions {
    /// This protocol process's node id.
    fn me(&self) -> NodeId;
    /// The fixed home sequencer node (node `N`).
    fn home(&self) -> NodeId;
    /// Total number of nodes (`N+1`).
    fn n_nodes(&self) -> usize;

    /// Current owner / sequencer-role holder for this object. Initially
    /// the home node; updated by protocols with migrating ownership and by
    /// the Illinois sequencer to track the dirty copy's address.
    fn owner(&self) -> NodeId;
    /// Update the owner register.
    fn set_owner(&mut self, owner: NodeId);

    /// Ownership epoch register paired with [`Actions::owner`]: the
    /// reign number of the owner the register currently names. A
    /// granting owner bumps it at every ownership transfer, and hosts
    /// stamp outgoing messages with it ([`crate::Msg::epoch`]), so a
    /// receiver can tell a fresh ownership announcement from a stale
    /// one — invalidation waves from *different* grantors share no
    /// FIFO channel, so under concurrency an old wave can arrive after
    /// a newer one. Registers guarded by `msg.epoch >= owner_epoch()`
    /// only ever move forward along the grant chain, which makes
    /// request forwarding terminate at the current owner.
    ///
    /// Hosts whose delivery is serialized or causally ordered (the
    /// oracle, the discrete-event simulator, recording mocks) may keep
    /// these defaults: every message is stamped zero, the freshness
    /// test is always `0 >= 0`, and behaviour is unchanged.
    fn owner_epoch(&self) -> u64 {
        0
    }
    /// Update the ownership epoch register.
    fn set_owner_epoch(&mut self, _epoch: u64) {}

    /// `push(destination, message-token, additional-parameters)`: send a
    /// token (optionally composed with `except`). The host attaches the
    /// actual data for `Params` (from the current operation context) and
    /// `Copy` (a snapshot of the sender's local replica).
    fn push(&mut self, dest: Dest, kind: MsgKind, payload: PayloadKind);

    /// `change(parameters-w, user-information)`: apply the write
    /// parameters of the current context to the local replica.
    fn change(&mut self);

    /// `pop(user-information)`: install the copy carried by the message
    /// being processed as the new local replica.
    fn install(&mut self);

    /// `return(parameters-r, user-information)`: deliver read data to the
    /// local application process, completing a read operation.
    fn ret(&mut self);

    /// `disable`: suspend servicing of the local queue until the pending
    /// response arrives.
    fn disable_local(&mut self);

    /// `enable`: resume servicing of the local queue.
    fn enable_local(&mut self);

    /// The operation this node's application process currently has in
    /// flight, if any. Protocols use it to re-issue the right request on
    /// RETRY; the paper's machines carry the same information as pending
    /// additional parameters in the disabled local queue.
    fn pending_op(&self) -> Option<crate::scenario::OpKind>;

    /// Arm a quorum round: reset the vote counter and require `need`
    /// further votes before [`Actions::quorum_vote`] reports the
    /// threshold crossed. Only the quorum family uses this; sequencer
    /// protocols never call it.
    fn quorum_arm(&mut self, need: usize);

    /// Count one vote (or ack) toward the armed quorum round. Returns
    /// `true` exactly when this vote crosses the armed threshold; later
    /// stragglers return `false`. Hosts that track per-operation tags
    /// discard votes for superseded rounds before counting.
    fn quorum_vote(&mut self) -> bool;
}

impl dyn Actions + '_ {
    /// `true` if this node is the fixed home sequencer.
    #[inline]
    pub fn is_home(&self) -> bool {
        self.me() == self.home()
    }

    /// `true` if this node currently holds the owner register.
    #[inline]
    pub fn is_owner(&self) -> bool {
        self.me() == self.owner()
    }
}

/// The eight analyzed coherence protocols (paper §1, Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Distributed Write-Through: writes ship parameters to the sequencer
    /// and invalidate **all** other copies, including the writer's own.
    WriteThrough,
    /// Write-Through-V: like Write-Through, but the writer's copy stays
    /// valid at the price of a permission round-trip.
    WriteThroughV,
    /// Write-Once: first write is written through (→ RESERVED), later
    /// writes are local (→ DIRTY).
    WriteOnce,
    /// Synapse: ownership acquired through the sequencer; a remote read of
    /// a dirty block forces a write-back and a retried request.
    Synapse,
    /// Illinois: like Synapse, but the sequencer tracks the dirty owner's
    /// address, serving remote reads without a retry, and a write hit on a
    /// valid copy invalidates without re-fetching data.
    Illinois,
    /// Berkeley: the sequencer role migrates to the last writer.
    Berkeley,
    /// Dragon: update-based; the owner broadcasts write parameters.
    Dragon,
    /// Firefly: update-based through the fixed sequencer.
    Firefly,
    /// Sequencer-free majority-quorum protocol (SC-ABD): every read and
    /// write runs a two-phase majority round (probe for versions, then
    /// commit the winner), so there is no sequencer node and a minority
    /// of dead replicas is survivable.
    Quorum,
}

impl ProtocolKind {
    /// The paper's eight sequencer-based protocols, in the paper's
    /// comparison order. The quorum family is deliberately outside this
    /// list: the paper's tables, figures, and region maps are defined
    /// over exactly these eight.
    pub const ALL: [ProtocolKind; 8] = [
        ProtocolKind::WriteThrough,
        ProtocolKind::WriteThroughV,
        ProtocolKind::WriteOnce,
        ProtocolKind::Synapse,
        ProtocolKind::Illinois,
        ProtocolKind::Berkeley,
        ProtocolKind::Dragon,
        ProtocolKind::Firefly,
    ];

    /// Every implemented protocol: the paper's eight plus the
    /// sequencer-free quorum family.
    pub const EVERY: [ProtocolKind; 9] = [
        ProtocolKind::WriteThrough,
        ProtocolKind::WriteThroughV,
        ProtocolKind::WriteOnce,
        ProtocolKind::Synapse,
        ProtocolKind::Illinois,
        ProtocolKind::Berkeley,
        ProtocolKind::Dragon,
        ProtocolKind::Firefly,
        ProtocolKind::Quorum,
    ];

    /// Human-readable protocol name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::WriteThrough => "Write-Through",
            ProtocolKind::WriteThroughV => "Write-Through-V",
            ProtocolKind::WriteOnce => "Write-Once",
            ProtocolKind::Synapse => "Synapse",
            ProtocolKind::Illinois => "Illinois",
            ProtocolKind::Berkeley => "Berkeley",
            ProtocolKind::Dragon => "Dragon",
            ProtocolKind::Firefly => "Firefly",
            ProtocolKind::Quorum => "Quorum",
        }
    }

    /// Whether the sequencer role migrates with ownership (Berkeley)
    /// instead of staying at the home node. (Our Dragon routes writes
    /// through a fixed sequencer — cost-equivalent to the migrating
    /// formulation for all client-driven workloads; see DESIGN.md §4.)
    pub fn migrating_sequencer(self) -> bool {
        matches!(self, ProtocolKind::Berkeley)
    }

    /// Whether every replica is a first-class voter the protocol polls
    /// directly (the sequencer-free quorum family), as opposed to the
    /// eight sequencer-based protocols, whose waves fan out from a
    /// per-object sequencing point. A polling protocol's replicas can
    /// never be dropped from broadcast waves: a majority is counted
    /// over all of them.
    pub fn polls_all_replicas(self) -> bool {
        matches!(self, ProtocolKind::Quorum)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A coherence protocol: the pair of client/sequencer Mealy machines for
/// one copy of one shared object.
pub trait CoherenceProtocol: Send + Sync {
    /// Which protocol this is.
    fn kind(&self) -> ProtocolKind;

    /// Starting state `q0` for the given role (paper §3: INVALID at
    /// clients, VALID at the sequencer for Write-Through; other protocols
    /// override as per Appendix A).
    fn initial_state(&self, role: Role) -> CopyState;

    /// The node currently playing the sequencer role, from `env`'s view.
    fn sequencer_node(&self, env: &dyn Actions) -> NodeId {
        if self.kind().migrating_sequencer() {
            env.owner()
        } else {
            env.home()
        }
    }

    /// The role `env.me()` currently plays.
    fn role_of(&self, env: &dyn Actions) -> Role {
        if env.me() == self.sequencer_node(env) {
            Role::Sequencer
        } else {
            Role::Client
        }
    }

    /// Combined transition/output function (`δ` and `λ`): process one
    /// input token in `state`, perform the output routine through `env`,
    /// and return the successor state of the local copy.
    ///
    /// # Panics
    ///
    /// Panics on (state, token) combinations the protocol marks as
    /// *error* — the paper's protocols do not analyze errors, and reaching
    /// such a combination indicates a host bug.
    fn step(&self, env: &mut dyn Actions, state: CopyState, msg: &Msg) -> CopyState;
}

/// Panic helper for the *error* entries of a transition table.
#[cold]
#[inline(never)]
pub fn protocol_error(kind: ProtocolKind, state: CopyState, msg: &Msg) -> ! {
    panic!(
        "{} protocol error: no transition from state {} on {:?} (initiator {}, sender {}, queue {:?})",
        kind.name(),
        state.name(),
        msg.kind,
        msg.initiator,
        msg.sender,
        msg.queue,
    )
}

/// Convenience: the paper's `push(except(N+1), ...)` — broadcast to every
/// node except `a` (and optionally `b`).
#[inline]
pub fn all_except(a: NodeId, b: Option<NodeId>) -> Dest {
    Dest::AllExcept(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_state_names_match_paper() {
        assert_eq!(CopyState::Invalid.name(), "INVALID");
        assert_eq!(CopyState::SharedDirty.name(), "SHARED-DIRTY");
    }

    #[test]
    fn readable_states() {
        assert!(!CopyState::Invalid.readable());
        assert!(!CopyState::Recalling.readable());
        assert!(!CopyState::Querying.readable());
        assert!(!CopyState::Committing.readable());
        for s in [
            CopyState::Valid,
            CopyState::Reserved,
            CopyState::Dirty,
            CopyState::SharedClean,
            CopyState::SharedDirty,
        ] {
            assert!(s.readable(), "{} should be readable", s.name());
        }
    }

    #[test]
    fn eight_protocols() {
        assert_eq!(ProtocolKind::ALL.len(), 8);
        let mut names: Vec<_> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "protocol names must be distinct");
    }

    #[test]
    fn only_berkeley_migrates() {
        for p in ProtocolKind::EVERY {
            let expect = matches!(p, ProtocolKind::Berkeley);
            assert_eq!(p.migrating_sequencer(), expect, "{}", p);
        }
    }

    #[test]
    fn every_is_all_plus_quorum() {
        assert_eq!(ProtocolKind::EVERY.len(), 9);
        assert_eq!(&ProtocolKind::EVERY[..8], &ProtocolKind::ALL[..]);
        assert_eq!(ProtocolKind::EVERY[8], ProtocolKind::Quorum);
        let mut names: Vec<_> = ProtocolKind::EVERY.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9, "protocol names must be distinct");
    }
}
