//! Message tokens exchanged between protocol processes.
//!
//! A message consists of a *token* and optional additional parameters.
//! The paper (§3) represents a token as the five-tuple
//! `(type, operation-initiator, object-name, queue, parameter-presence)`;
//! [`Msg`] carries the same five fields plus two host-level fields
//! (`sender` for routing, `op` for per-operation cost attribution) that the
//! paper leaves implicit in its channel structure.

use crate::ids::{NodeId, ObjectId, OpTag};
use serde::{Deserialize, Serialize};

/// The queue a message is (to be) enqueued into (paper's `queue` field).
///
/// Clients have two input queues: a *local* queue fed by the node's own
/// application process and a *distributed* queue fed by other protocol
/// processes. The sequencer has only a distributed queue, which also
/// receives its own application's requests — that queue performs the global
/// sequential filtering of concurrent distributed operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueKind {
    /// The client-side local queue (`l`).
    Local,
    /// The distributed queue (`d`).
    Distributed,
}

impl QueueKind {
    /// Both queue kinds, in wire-code order.
    pub const ALL: [QueueKind; 2] = [QueueKind::Local, QueueKind::Distributed];

    /// Stable single-byte code used by wire codecs (`repmem-net`).
    #[inline]
    pub fn wire_code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`QueueKind::wire_code`]; `None` for unknown codes.
    #[inline]
    pub fn from_wire_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }
}

/// Parameter presence of a message (paper's `parameter-presence` field),
/// which determines its communication cost:
///
/// | presence | paper symbol | cost |
/// |---|---|---|
/// | [`PayloadKind::Token`]  | `0`  | 1 |
/// | [`PayloadKind::Params`] | `w` (or `r`) | `P+1` |
/// | [`PayloadKind::Copy`]   | `ui` | `S+1` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadKind {
    /// Message token only.
    Token,
    /// Token + write-operation parameters.
    Params,
    /// Token + complete new user-information part of a copy.
    Copy,
}

impl PayloadKind {
    /// All parameter presences, in wire-code order. The order matches the
    /// cost-class buckets (`1`, `P+1`, `S+1`) used by per-link meters.
    pub const ALL: [PayloadKind; 3] = [PayloadKind::Token, PayloadKind::Params, PayloadKind::Copy];

    /// Stable single-byte code used by wire codecs (`repmem-net`); also
    /// the cost-class bucket index.
    #[inline]
    pub fn wire_code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`PayloadKind::wire_code`]; `None` for unknown codes.
    #[inline]
    pub fn from_wire_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }
}

/// Message types used across the eight protocols (paper's `type` field).
///
/// The Write-Through protocol uses exactly six of these (`RReq`, `WReq`,
/// `RPer`, `WPer`, `RGnt`, `WInv`); the remaining kinds appear in the other
/// seven adapted protocols (ownership transfer, recall/flush of a dirty
/// copy, retry after a Synapse-style write-back, update broadcasts, plain
/// acknowledgements, and the Write-Once "going dirty" notice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MsgKind {
    /// Application read request (`R-REQ`).
    RReq,
    /// Application write request (`W-REQ`).
    WReq,
    /// Read permission-asking message (`R-PER`).
    RPer,
    /// Write permission-asking message (`W-PER`).
    WPer,
    /// Write-upgrade request: the writer already holds a VALID copy and
    /// only needs exclusivity, not data (Illinois, Berkeley).
    WUpg,
    /// Read grant, carries the user information (`R-GNT`).
    RGnt,
    /// Write grant / ownership grant (may carry the user information).
    WGnt,
    /// Invalidation (`W-INV`).
    WInv,
    /// Update carrying write parameters (Dragon, Firefly).
    Upd,
    /// Demand that a dirty owner flush its copy back so a **read** can be
    /// served (Synapse/Illinois/Write-Once sequencer → owner).
    Recall,
    /// Demand that a dirty owner flush **and invalidate** its copy so an
    /// exclusive (write) grant can be made.
    RecallX,
    /// Write-back of a dirty copy (owner → sequencer) answering a
    /// [`MsgKind::Recall`]; carries the copy.
    Flush,
    /// Write-back answering a [`MsgKind::RecallX`]; the owner invalidates
    /// itself. Carries the copy.
    FlushX,
    /// Tell a requester to re-issue its request (Synapse's two-phase
    /// read-miss service of a dirty block).
    Retry,
    /// Plain acknowledgement token.
    Ack,
    /// Write-Once client → sequencer notice that a RESERVED copy is being
    /// written a second time and the sequencer's copy is now stale.
    DirtyNote,
    /// Quorum phase-1 probe: the initiator asks every peer for its
    /// current version (SC-ABD "get").
    QProbe,
    /// Quorum phase-1 reply: a peer ships its copy (version + data) back
    /// to the initiator.
    QVote,
    /// Quorum phase-2 commit wave: the initiator broadcasts the winning
    /// write parameters (writes) or the freshest copy (read write-back).
    QCommit,
    /// Quorum phase-2 acknowledgement of a commit.
    QAck,
}

impl MsgKind {
    /// Every message kind, in wire-code order ([`MsgKind::wire_code`]
    /// indexes into this array).
    pub const ALL: [MsgKind; 20] = [
        MsgKind::RReq,
        MsgKind::WReq,
        MsgKind::RPer,
        MsgKind::WPer,
        MsgKind::WUpg,
        MsgKind::RGnt,
        MsgKind::WGnt,
        MsgKind::WInv,
        MsgKind::Upd,
        MsgKind::Recall,
        MsgKind::RecallX,
        MsgKind::Flush,
        MsgKind::FlushX,
        MsgKind::Retry,
        MsgKind::Ack,
        MsgKind::DirtyNote,
        MsgKind::QProbe,
        MsgKind::QVote,
        MsgKind::QCommit,
        MsgKind::QAck,
    ];

    /// Stable single-byte code used by wire codecs (`repmem-net`).
    #[inline]
    pub fn wire_code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`MsgKind::wire_code`]; `None` for unknown codes.
    #[inline]
    pub fn from_wire_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// `true` for the two application-request kinds that enter via a
    /// node's own queue rather than over a channel.
    #[inline]
    pub fn is_app_request(self) -> bool {
        matches!(self, MsgKind::RReq | MsgKind::WReq)
    }

    /// Short uppercase mnemonic used by transition-table dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MsgKind::RReq => "R-REQ",
            MsgKind::WReq => "W-REQ",
            MsgKind::RPer => "R-PER",
            MsgKind::WPer => "W-PER",
            MsgKind::WUpg => "W-UPG",
            MsgKind::RGnt => "R-GNT",
            MsgKind::WGnt => "W-GNT",
            MsgKind::WInv => "W-INV",
            MsgKind::Upd => "UPD",
            MsgKind::Recall => "RECALL",
            MsgKind::RecallX => "RECALL-X",
            MsgKind::Flush => "FLUSH",
            MsgKind::FlushX => "FLUSH-X",
            MsgKind::Retry => "RETRY",
            MsgKind::Ack => "ACK",
            MsgKind::DirtyNote => "DIRTY-NOTE",
            MsgKind::QProbe => "Q-PROBE",
            MsgKind::QVote => "Q-VOTE",
            MsgKind::QCommit => "Q-COMMIT",
            MsgKind::QAck => "Q-ACK",
        }
    }
}

/// A message token together with the host-level routing/attribution fields.
///
/// `payload` describes *what class of data* travels with the token; the
/// hosts (oracle, simulator, runtime) attach and move the actual data so
/// that the protocol machines stay data-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Msg {
    /// Message type.
    pub kind: MsgKind,
    /// Node whose application process initiated the operation this message
    /// belongs to (paper's `operation-initiator`).
    pub initiator: NodeId,
    /// Node that sent this message (equals the receiver for application
    /// requests popped from a local queue).
    pub sender: NodeId,
    /// The shared object concerned (paper's `object-name`).
    pub object: ObjectId,
    /// Which input queue the message arrived on.
    pub queue: QueueKind,
    /// Parameter presence (cost class).
    pub payload: PayloadKind,
    /// Host-assigned operation tag for cost attribution.
    pub op: OpTag,
    /// Ownership epoch the sender's registers were at when this message
    /// was pushed (see [`crate::Actions::owner_epoch`]). Protocols with
    /// migrating ownership use it to tell a fresh ownership
    /// announcement from one that was delayed in flight; everywhere
    /// else it is zero.
    pub epoch: u64,
}

impl Msg {
    /// Construct an application request (read or write) as it appears at
    /// the head of the issuing node's queue. On a client the request sits
    /// in the local queue; on the sequencer it goes through the
    /// distributed queue (paper §2).
    pub fn app_request(
        kind: MsgKind,
        node: NodeId,
        is_sequencer: bool,
        object: ObjectId,
        op: OpTag,
    ) -> Self {
        debug_assert!(kind.is_app_request());
        Msg {
            kind,
            initiator: node,
            sender: node,
            object,
            queue: if is_sequencer {
                QueueKind::Distributed
            } else {
                QueueKind::Local
            },
            payload: match kind {
                MsgKind::WReq => PayloadKind::Params,
                _ => PayloadKind::Token,
            },
            op,
            epoch: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_request_queue_placement() {
        let obj = ObjectId(0);
        let m = Msg::app_request(MsgKind::RReq, NodeId(2), false, obj, OpTag(1));
        assert_eq!(m.queue, QueueKind::Local);
        assert_eq!(m.payload, PayloadKind::Token);
        let m = Msg::app_request(MsgKind::WReq, NodeId(5), true, obj, OpTag(2));
        assert_eq!(m.queue, QueueKind::Distributed);
        assert_eq!(m.payload, PayloadKind::Params);
        assert_eq!(m.initiator, NodeId(5));
        assert_eq!(m.sender, NodeId(5));
    }

    #[test]
    fn app_request_kinds() {
        assert!(MsgKind::RReq.is_app_request());
        assert!(MsgKind::WReq.is_app_request());
        assert!(!MsgKind::RPer.is_app_request());
        assert!(!MsgKind::WInv.is_app_request());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = MsgKind::ALL.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MsgKind::ALL.len());
    }

    #[test]
    fn wire_codes_round_trip() {
        for (i, &k) in MsgKind::ALL.iter().enumerate() {
            assert_eq!(k.wire_code(), i as u8);
            assert_eq!(MsgKind::from_wire_code(i as u8), Some(k));
        }
        assert_eq!(MsgKind::from_wire_code(MsgKind::ALL.len() as u8), None);
        for &p in &PayloadKind::ALL {
            assert_eq!(PayloadKind::from_wire_code(p.wire_code()), Some(p));
        }
        assert_eq!(PayloadKind::from_wire_code(3), None);
        for &q in &QueueKind::ALL {
            assert_eq!(QueueKind::from_wire_code(q.wire_code()), Some(q));
        }
        assert_eq!(QueueKind::from_wire_code(2), None);
    }
}
