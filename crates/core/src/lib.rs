//! # repmem-core
//!
//! Core vocabulary and formal model for a **data-replication based
//! distributed shared memory** (DSM), following Srbljić & Budin,
//! *Analytical Performance Evaluation of Data Replication Based Shared
//! Memory Model*, HPDC 1993.
//!
//! The system consists of `N+1` nodes — `N` *clients* plus one
//! *sequencer* — connected by fault-free FIFO channels. The global address
//! space is decomposed into `M` disjoint shared objects, each fully
//! replicated at every node. Every replica is managed by a *protocol
//! process* formalized as a Mealy machine ([`CoherenceProtocol`]) whose
//! output routines are concatenations of seven primitive functions
//! (`pop`, `push`, `except`, `change`, `return`, `disable`, `enable`),
//! exposed here as the [`Actions`] trait.
//!
//! This crate defines only the *shared formal model*; the concrete
//! protocol machines live in `repmem-protocols`, the analytic engine in
//! `repmem-analytic`, and the executable hosts (discrete-event simulator,
//! threaded runtime) in `repmem-sim` / `repmem-runtime`.
//!
//! ## Cost model (paper §4.1)
//!
//! Every inter-node message is charged by its *parameter presence*:
//!
//! * token only → `1` unit,
//! * token + write-operation parameters → `P+1` units,
//! * token + full user information (a copy of the object) → `S+1` units,
//! * any intra-node action → `0` units.

pub mod ids;
pub mod mealy;
pub mod message;
pub mod params;
pub mod scenario;
pub mod trace;

pub use ids::{NodeId, ObjectId, OpTag};
pub use mealy::{
    all_except, protocol_error, Actions, CoherenceProtocol, CopyState, Dest, ProtocolKind, Role,
};
pub use message::{Msg, MsgKind, PayloadKind, QueueKind};
pub use params::SystemParams;
pub use scenario::{ActorSpec, OpKind, Scenario, ScenarioError};
pub use trace::TraceSig;
