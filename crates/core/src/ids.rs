//! Identifiers for nodes, shared objects and in-flight operations.

use serde::{Deserialize, Serialize};

/// Identifier of a node in the distributed system.
///
/// The paper's system has `N+1` nodes: clients are indexed `0..N` and the
/// (home) sequencer is node `N` (the paper writes them as `i = 1..N` and
/// `N+1`; we use zero-based indices throughout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Raw index as `usize`, for indexing per-node tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of one of the `M` disjoint shared data blocks
/// ("shared objects", paper §2).
///
/// A shared object is a collection of data that need not be stored
/// consecutively; the analysis concentrates on one object at a time, and
/// objects are fully independent (each has its own protocol processes),
/// so most of this workspace operates per-object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Raw index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Tag attributing every message of a distributed operation to the
/// operation (read or write) that initiated it.
///
/// Hosts assign a fresh tag per application request; cost accounting sums
/// message costs per tag, which is exactly the paper's notion of a *trace
/// communication cost* (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpTag(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ObjectId(7).to_string(), "obj7");
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(NodeId(12).idx(), 12);
        assert_eq!(ObjectId(5).idx(), 5);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(OpTag(9) < OpTag(10));
    }
}
