//! Trace signatures — the shared key under which the analytic engine and
//! the simulator aggregate operation executions.
//!
//! The paper (§4.1) shows that for a given protocol every operation
//! execution results in exactly one *trace of actions* `tr_h` from a finite
//! set `TR`, with a fixed communication cost `cc_h`. We identify a trace by
//! the observable triple *(initiating node, operation kind, total
//! communication cost)*: two executions with the same signature are the
//! same trace for accounting purposes, because the steady-state average
//! cost `acc = Σ_h π_h · cc_h` only depends on costs and their
//! probabilities.

use crate::ids::NodeId;
use crate::scenario::OpKind;
use serde::{Deserialize, Serialize};

/// Observable signature of one operation execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceSig {
    /// Node whose application process initiated the operation.
    pub initiator: NodeId,
    /// Read or write.
    pub op: OpKind,
    /// Total communication cost of the trace (sum of inter-node message
    /// costs in units of the paper's cost model).
    pub cost: u64,
}

impl std::fmt::Display for TraceSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} (cc={})", self.initiator, self.op, self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let t = TraceSig {
            initiator: NodeId(1),
            op: OpKind::Write,
            cost: 33,
        };
        assert_eq!(t.to_string(), "n1 write (cc=33)");
    }

    #[test]
    fn ordering_groups_by_initiator_then_op() {
        let a = TraceSig {
            initiator: NodeId(0),
            op: OpKind::Read,
            cost: 5,
        };
        let b = TraceSig {
            initiator: NodeId(0),
            op: OpKind::Write,
            cost: 0,
        };
        let c = TraceSig {
            initiator: NodeId(1),
            op: OpKind::Read,
            cost: 0,
        };
        assert!(a < b && b < c);
    }
}
