//! Offline stand-in for the subset of the `parking_lot` API this
//! workspace uses, backed by `std::sync`. Lock acquisition mirrors
//! parking_lot's non-poisoning semantics: a panic while holding the lock
//! clears the poison flag on the next acquisition instead of propagating
//! it (the state a panicking holder leaves behind is still whatever it
//! was mid-update, exactly as with the real crate).

use std::sync::{self, PoisonError};

/// A non-poisoning mutual-exclusion lock (mirror of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A non-poisoning reader-writer lock (mirror of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the next lock() succeeds.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
