//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: [`Bytes`], a cheaply-cloneable immutable byte buffer. Cloning is
//! an `Arc` bump for heap-backed buffers and free for static slices —
//! the property the threaded runtime relies on when fanning a replica
//! payload out to `N` peers.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer (mirror of `bytes::Bytes`).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Repr);

#[derive(Clone, Default)]
enum Repr {
    #[default]
    Empty,
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// The empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes(Repr::Empty)
    }

    /// Wrap a static slice (no allocation, free clones).
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Empty => &[],
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Copy the contents into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Repr {
    fn eq(&self, other: &Self) -> bool {
        Bytes::as_slice_of(self) == Bytes::as_slice_of(other)
    }
}

impl Eq for Repr {}

impl PartialOrd for Repr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Repr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        Bytes::as_slice_of(self).cmp(Bytes::as_slice_of(other))
    }
}

impl std::hash::Hash for Repr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        Bytes::as_slice_of(self).hash(state);
    }
}

impl Bytes {
    fn as_slice_of(repr: &Repr) -> &[u8] {
        match repr {
            Repr::Empty => &[],
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        let c = Bytes::from(String::from("abc"));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"abc");
        assert_eq!(a.len(), 3);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\"\n")), r#"b"a\"\n""#);
    }
}
