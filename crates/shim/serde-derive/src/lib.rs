//! No-op derive macros backing the offline `serde` stand-in: the
//! workspace annotates its vocabulary types with
//! `#[derive(Serialize, Deserialize)]` for downstream consumers, but
//! nothing in-tree serializes, so in offline builds the derives expand to
//! nothing. Swapping the real `serde` back in is a two-line change in the
//! workspace manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
