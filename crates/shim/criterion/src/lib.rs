//! Offline stand-in for the subset of the Criterion API this workspace's
//! benches use. It keeps every bench target compiling and runnable with
//! no external dependencies: each benchmark is timed with plain
//! wall-clock sampling (warm-up, then `sample_size` samples, median
//! reported). There is no outlier analysis, no HTML report and no
//! statistical regression testing — for those, point the `criterion`
//! workspace dependency back at crates.io.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming the benchmark up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// CLI compatibility no-op (the shim takes no arguments).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Finalize (report writing in real Criterion; a no-op here).
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation (mirror of `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotate throughput (reported as elements/sec or bytes/sec).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let median = run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self.report_throughput(median);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let median = run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b| f(b, input),
        );
        self.report_throughput(median);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn report_throughput(&self, median_per_iter: Duration) {
        let Some(t) = self.throughput else { return };
        let secs = median_per_iter.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        match t {
            Throughput::Elements(n) => {
                println!("    thrpt: {:.0} elem/s", n as f64 / secs)
            }
            Throughput::Bytes(n) => {
                println!("    thrpt: {:.0} B/s", n as f64 / secs)
            }
        }
    }
}

/// A benchmark identifier with a parameter (mirror of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, running it enough times per sample to fill the
    /// measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

/// CI smoke mode: `REPMEM_BENCH_SMOKE=1` clamps every benchmark to one
/// sample over tiny time budgets, so `cargo bench` doubles as a fast
/// "do all bench targets still run end to end" check.
fn smoke_mode() -> bool {
    std::env::var("REPMEM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn run_one<F>(
    id: &str,
    mut sample_size: usize,
    mut measurement_time: Duration,
    mut warm_up_time: Duration,
    f: &mut F,
) -> Duration
where
    F: FnMut(&mut Bencher),
{
    if smoke_mode() {
        sample_size = 1;
        measurement_time = Duration::from_millis(50);
        warm_up_time = Duration::from_millis(10);
    }
    // Warm-up: single iterations until the warm-up budget is spent; the
    // timings also size the per-sample iteration count.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters as u32;
    let budget_per_sample = measurement_time / sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut b = Bencher {
        iters_per_sample,
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "{id:<48} time: {median:>12.3?}  ({} samples × {} iters)",
        b.samples.len(),
        iters_per_sample
    );
    median
}

/// Collect benchmark functions into a runnable group (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group (mirror of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).measurement_time(Duration::from_millis(20));
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
