//! Offline stand-in for the subset of the `rand` 0.9 API used by this
//! workspace, so the build needs no network access (the CI and the
//! air-gapped reproduction environments build with `--offline`).
//!
//! Only what the workspace calls is provided:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] for `f64`/`u64`/`u32`/`bool` and
//!   [`Rng::random_range`] over half-open integer ranges.
//!
//! Determinism contract: for a fixed seed the stream is stable across
//! platforms and releases of this workspace. It is **not** the upstream
//! `StdRng` stream (upstream explicitly does not promise stream
//! stability across versions either).

use std::ops::Range;

/// Seedable construction (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (mirror of the `rand::Rng` extension trait).
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// A uniform draw from a half-open integer range.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

/// Types samplable uniformly from raw generator output.
pub trait Standard {
    /// Map 64 uniform bits to a uniform value.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait UniformInt: Sized {
    /// A uniform draw from `range` (debiased by rejection).
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Rejection sampling over the largest multiple of `span`.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let bits = rng.next_u64();
                    if bits < zone {
                        return range.start + (bits % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state-initialized through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.random_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(3u32..5);
            assert!((3..5).contains(&v));
        }
    }
}
