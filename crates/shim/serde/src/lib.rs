//! Offline stand-in for the `serde` derive surface. The workspace only
//! uses `#[derive(Serialize, Deserialize)]` on its vocabulary types —
//! nothing in-tree serializes — so the derives are re-exported as no-ops
//! and the build needs no network access. To use the real serde, point
//! the `serde` workspace dependency back at crates.io.

pub use repmem_serde_derive_shim::{Deserialize, Serialize};
