//! # repmem-adaptive
//!
//! Self-tuning coherence-protocol selection — the future work the paper's
//! conclusion sketches: *"the model can be applied to implement a
//! classifier for the development of adaptive data replication coherence
//! protocols with self-tuning capability based on run-time information."*
//!
//! Three pieces:
//!
//! * [`WorkloadEstimator`] — estimates the workload's event probabilities
//!   online from the observed operation stream (exponentially decayed
//!   counts, so phase changes are picked up quickly);
//! * [`Classifier`] — turns an estimated [`Scenario`] into the
//!   minimum-cost protocol using the analytic chain engine (which accepts
//!   *any* scenario, not just the three canonical deviations);
//! * [`AdaptivePlan`] — evaluates an adaptive schedule over a
//!   phase-structured workload against every static protocol choice,
//!   charging a replica-redistribution penalty of `N·(S+1)` cost units
//!   per protocol switch (every client re-fetches a coherent copy).

use repmem_analytic::chain::{analyze, AnalyzeOpts};
use repmem_core::{ActorSpec, NodeId, OpKind, ProtocolKind, Scenario, SystemParams};
use repmem_protocols::protocol;
use repmem_workload::OpEvent;
use std::collections::BTreeMap;

/// Online estimator of per-node read/write event probabilities.
///
/// Maintains exponentially decayed per-(node, op) weights: after each
/// observed operation every weight is multiplied by `1 − 1/window` and
/// the observed event's weight is incremented, so the estimate tracks
/// roughly the last `window` operations.
#[derive(Debug, Clone)]
pub struct WorkloadEstimator {
    window: f64,
    weights: BTreeMap<(NodeId, OpKind), f64>,
    total: f64,
}

impl WorkloadEstimator {
    /// A fresh estimator with the given effective window (operations).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        WorkloadEstimator {
            window: window as f64,
            weights: BTreeMap::new(),
            total: 0.0,
        }
    }

    /// Observe one operation.
    pub fn observe(&mut self, node: NodeId, op: OpKind) {
        let decay = 1.0 - 1.0 / self.window;
        for w in self.weights.values_mut() {
            *w *= decay;
        }
        self.total = self.total * decay + 1.0;
        *self.weights.entry((node, op)).or_insert(0.0) += 1.0;
    }

    /// Observe a whole event (object identity is irrelevant to the
    /// homogeneous-objects model).
    pub fn observe_event(&mut self, ev: &OpEvent) {
        self.observe(ev.node, ev.op);
    }

    /// Number of effective observations currently in the window.
    pub fn effective_samples(&self) -> f64 {
        self.total
    }

    /// The estimated scenario, or `None` before any observation.
    pub fn scenario(&self) -> Option<Scenario> {
        if self.total <= 0.0 {
            return None;
        }
        let mut actors: BTreeMap<NodeId, ActorSpec> = BTreeMap::new();
        for (&(node, op), &w) in &self.weights {
            let spec = actors.entry(node).or_insert(ActorSpec {
                node,
                read_prob: 0.0,
                write_prob: 0.0,
            });
            match op {
                OpKind::Read => spec.read_prob += w / self.total,
                OpKind::Write => spec.write_prob += w / self.total,
            }
        }
        // Renormalize the tiny numeric drift of the decayed sums.
        let sum: f64 = actors.values().map(ActorSpec::total).sum();
        let mut specs: Vec<ActorSpec> = actors
            .into_values()
            .filter(|a| a.total() > 1e-9)
            .map(|mut a| {
                a.read_prob /= sum;
                a.write_prob /= sum;
                a
            })
            .collect();
        if specs.is_empty() {
            return None;
        }
        // Guarantee exact normalization for Scenario::new.
        let s: f64 = specs.iter().map(ActorSpec::total).sum();
        specs[0].read_prob += 1.0 - s;
        Scenario::new(specs).ok()
    }
}

/// The analytic-model classifier: ranks protocols for a scenario.
#[derive(Debug, Clone, Copy)]
pub struct Classifier {
    /// System parameters the costs are computed under.
    pub sys: SystemParams,
}

impl Classifier {
    /// Predicted steady-state cost of one protocol under a scenario.
    pub fn cost(&self, kind: ProtocolKind, scenario: &Scenario) -> f64 {
        analyze(protocol(kind), &self.sys, scenario, AnalyzeOpts::default())
            .map(|r| r.acc)
            .unwrap_or(f64::INFINITY)
    }

    /// All eight protocols ranked by predicted cost (cheapest first).
    pub fn rank(&self, scenario: &Scenario) -> Vec<(ProtocolKind, f64)> {
        let mut v: Vec<(ProtocolKind, f64)> = ProtocolKind::ALL
            .into_iter()
            .map(|k| (k, self.cost(k, scenario)))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }

    /// The minimum-cost protocol for a scenario.
    pub fn best(&self, scenario: &Scenario) -> (ProtocolKind, f64) {
        self.rank(scenario)[0]
    }
}

/// One phase of a phase-structured workload.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Steady-state scenario of the phase.
    pub scenario: Scenario,
    /// Number of operations the phase lasts.
    pub ops: usize,
}

/// The evaluated adaptive schedule.
#[derive(Debug, Clone)]
pub struct AdaptivePlan {
    /// Chosen protocol and predicted per-op cost for each phase.
    pub choices: Vec<(ProtocolKind, f64)>,
    /// Total predicted cost of the adaptive schedule, including switch
    /// penalties.
    pub adaptive_cost: f64,
    /// Number of protocol switches.
    pub switches: usize,
    /// Total predicted cost of each static single-protocol choice.
    pub static_costs: Vec<(ProtocolKind, f64)>,
}

impl AdaptivePlan {
    /// The best static protocol and its total cost.
    pub fn best_static(&self) -> (ProtocolKind, f64) {
        self.static_costs
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("eight static candidates")
    }

    /// Cost ratio adaptive / best-static (< 1 means adaptation pays off).
    pub fn improvement(&self) -> f64 {
        let (_, s) = self.best_static();
        if s == 0.0 {
            if self.adaptive_cost == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.adaptive_cost / s
        }
    }
}

/// Cost charged per protocol switch: every client re-fetches a coherent
/// copy (`N` copy transfers).
pub fn switch_penalty(sys: &SystemParams) -> f64 {
    sys.n_clients as f64 * (sys.s as f64 + 1.0)
}

/// A per-object-class protocol assignment over a composite workload (the
/// paper's model is per object, so nothing forces all objects onto one
/// protocol).
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Chosen protocol and per-operation cost for each class, in input
    /// order.
    pub per_class: Vec<(ProtocolKind, f64)>,
    /// System-level `acc` of the mixed assignment (weighted by class
    /// access weights).
    pub mixed_acc: f64,
    /// The best *uniform* choice (one protocol for every object) and its
    /// system-level `acc`.
    pub best_uniform: (ProtocolKind, f64),
}

impl Assignment {
    /// `mixed_acc / best_uniform_acc` — `< 1` when heterogeneous objects
    /// benefit from per-object protocols.
    pub fn improvement(&self) -> f64 {
        if self.best_uniform.1 == 0.0 {
            1.0
        } else {
            self.mixed_acc / self.best_uniform.1
        }
    }
}

/// Choose the cheapest protocol per object class and compare against the
/// best uniform assignment.
pub fn assign(
    sys: &SystemParams,
    classes: &[repmem_analytic::composite::ObjectClass],
) -> Assignment {
    repmem_analytic::composite::check_weights(classes).expect("valid class weights");
    let classifier = Classifier { sys: *sys };
    let per_class: Vec<(ProtocolKind, f64)> = classes
        .iter()
        .map(|c| classifier.best(&c.scenario))
        .collect();
    let mixed_acc = classes
        .iter()
        .zip(&per_class)
        .map(|(c, (_, acc))| c.weight * acc)
        .sum();
    let best_uniform = ProtocolKind::ALL
        .into_iter()
        .map(|k| {
            let acc = repmem_analytic::composite::composite_acc(protocol(k), sys, classes)
                .unwrap_or(f64::INFINITY);
            (k, acc)
        })
        .min_by(|l, r| l.1.total_cmp(&r.1))
        .expect("eight protocols");
    Assignment {
        per_class,
        mixed_acc,
        best_uniform,
    }
}

/// Evaluate the adaptive schedule over phases: per phase, the classifier
/// picks the cheapest protocol under that phase's scenario; switches cost
/// [`switch_penalty`].
pub fn plan(sys: &SystemParams, phases: &[Phase]) -> AdaptivePlan {
    assert!(!phases.is_empty(), "need at least one phase");
    let classifier = Classifier { sys: *sys };
    let mut choices = Vec::with_capacity(phases.len());
    let mut adaptive_cost = 0.0;
    let mut switches = 0usize;
    let mut prev: Option<ProtocolKind> = None;
    for phase in phases {
        let (kind, acc) = classifier.best(&phase.scenario);
        if let Some(p) = prev {
            if p != kind {
                switches += 1;
                adaptive_cost += switch_penalty(sys);
            }
        }
        prev = Some(kind);
        adaptive_cost += acc * phase.ops as f64;
        choices.push((kind, acc));
    }
    let static_costs = ProtocolKind::ALL
        .into_iter()
        .map(|k| {
            let total: f64 = phases
                .iter()
                .map(|ph| classifier.cost(k, &ph.scenario) * ph.ops as f64)
                .sum();
            (k, total)
        })
        .collect();
    AdaptivePlan {
        choices,
        adaptive_cost,
        switches,
        static_costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemParams {
        SystemParams::new(10, 200, 30)
    }

    #[test]
    fn estimator_recovers_read_disturbance() {
        let scenario = Scenario::read_disturbance(0.3, 0.05, 2).unwrap();
        let mut sampler = repmem_workload::ScenarioSampler::new(&scenario, 1, 9);
        let mut est = WorkloadEstimator::new(4000);
        for _ in 0..20_000 {
            est.observe_event(&sampler.next_event());
        }
        let recovered = est.scenario().expect("estimate available");
        for actor in &scenario.actors {
            let found = recovered
                .actors
                .iter()
                .find(|a| a.node == actor.node)
                .unwrap_or_else(|| panic!("actor {} missing", actor.node));
            assert!((found.read_prob - actor.read_prob).abs() < 0.05);
            assert!((found.write_prob - actor.write_prob).abs() < 0.05);
        }
    }

    #[test]
    fn estimator_tracks_phase_changes() {
        let mut est = WorkloadEstimator::new(200);
        // Phase 1: node 0 writes only.
        for _ in 0..2000 {
            est.observe(NodeId(0), OpKind::Write);
        }
        // Phase 2: node 1 reads only.
        for _ in 0..2000 {
            est.observe(NodeId(1), OpKind::Read);
        }
        let s = est.scenario().unwrap();
        let w0 = s
            .actors
            .iter()
            .find(|a| a.node == NodeId(0))
            .map(|a| a.total())
            .unwrap_or(0.0);
        let r1 = s
            .actors
            .iter()
            .find(|a| a.node == NodeId(1))
            .map(|a| a.total())
            .unwrap_or(0.0);
        assert!(r1 > 0.99, "new phase should dominate: {r1}");
        assert!(w0 < 0.01, "old phase should have decayed: {w0}");
    }

    #[test]
    fn classifier_prefers_update_protocols_for_read_heavy_sharing() {
        // Many readers of a rarely-written object at small P: updates win
        // over invalidation storms... with S large, re-fetches are
        // expensive while updates cost only N(P+1) per (rare) write.
        let sys = SystemParams::new(10, 5000, 2);
        let scenario = Scenario::read_disturbance(0.02, 0.09, 10).unwrap();
        let c = Classifier { sys };
        let (best, _) = c.best(&scenario);
        assert!(
            matches!(best, ProtocolKind::Dragon),
            "expected Dragon for read-heavy sharing, got {best:?}"
        );
    }

    #[test]
    fn classifier_prefers_ownership_for_private_writes() {
        // One node does all the work: Berkeley/Synapse-family are free.
        let sys = sys();
        let scenario = Scenario::ideal(0.5).unwrap();
        let c = Classifier { sys };
        let (best, cost) = c.best(&scenario);
        assert!(
            cost.abs() < 1e-9,
            "steady-state cost should vanish, got {cost}"
        );
        assert!(matches!(
            best,
            ProtocolKind::WriteOnce
                | ProtocolKind::Synapse
                | ProtocolKind::Illinois
                | ProtocolKind::Berkeley
        ));
    }

    #[test]
    fn adaptive_beats_every_static_choice_on_shifting_phases() {
        let sys = sys();
        let phases = vec![
            // Phase A: single-owner writes — ownership protocols free.
            Phase {
                scenario: Scenario::ideal(0.6).unwrap(),
                ops: 20_000,
            },
            // Phase B: widely-shared read-mostly object — updates cheap.
            Phase {
                scenario: Scenario::read_disturbance(0.02, 0.11, 8).unwrap(),
                ops: 20_000,
            },
            // Phase C: multiple active writers.
            Phase {
                scenario: Scenario::multiple_centers(0.5, 4).unwrap(),
                ops: 20_000,
            },
        ];
        let plan = plan(&sys, &phases);
        assert_eq!(plan.choices.len(), 3);
        let (static_kind, static_cost) = plan.best_static();
        assert!(
            plan.adaptive_cost < static_cost,
            "adaptive {} not better than static {static_kind:?} {static_cost}",
            plan.adaptive_cost
        );
        assert!(plan.switches >= 1);
        assert!(plan.improvement() < 1.0);
    }

    #[test]
    fn per_object_assignment_beats_uniform_on_heterogeneous_objects() {
        use repmem_analytic::composite::ObjectClass;
        // Pick S ≫ N·P so invalidation re-fetches dwarf update traffic on
        // the shared class, while the private class is free for
        // ownership protocols but expensive for update protocols — no
        // single protocol wins both.
        let sys = SystemParams::new(10, 5000, 2);
        let classes = vec![
            ObjectClass::new("private hot", Scenario::ideal(0.7).unwrap(), 0.5),
            ObjectClass::new(
                "read-shared",
                Scenario::read_disturbance(0.03, 0.09, 8).unwrap(),
                0.5,
            ),
        ];
        let a = assign(&sys, &classes);
        assert_eq!(a.per_class.len(), 2);
        // Private class: an ownership protocol at zero cost.
        assert_eq!(a.per_class[0].1, 0.0);
        // Shared class: Dragon (cheap updates at tiny P).
        assert_eq!(a.per_class[1].0, ProtocolKind::Dragon);
        assert!(
            a.mixed_acc < a.best_uniform.1 * 0.8,
            "mixed {} vs uniform {:?}",
            a.mixed_acc,
            a.best_uniform
        );
        assert!(a.improvement() < 0.8);
    }

    #[test]
    fn switch_penalty_scales_with_system() {
        let a = switch_penalty(&SystemParams::new(4, 100, 10));
        let b = switch_penalty(&SystemParams::new(8, 100, 10));
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
