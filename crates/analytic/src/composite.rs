//! Composite multi-object workloads.
//!
//! The paper's model is *per shared object* — the analysis fixes one
//! object `j` and its protocol processes, and the system's `M` objects
//! are independent. Real address spaces are heterogeneous: some objects
//! are private, some read-shared, some write-contended. A composite
//! workload assigns each object class its own [`Scenario`] and an access
//! weight; the system-level average communication cost per operation is
//! the weighted mixture of the per-object costs.

use crate::chain::{analyze, AnalyzeError, AnalyzeOpts};
use repmem_core::{CoherenceProtocol, Scenario, SystemParams};

/// One class of objects with a common access pattern.
#[derive(Debug, Clone)]
pub struct ObjectClass {
    /// Descriptive label (for reports).
    pub label: String,
    /// Per-object access scenario.
    pub scenario: Scenario,
    /// Fraction of all operations that target objects of this class.
    pub weight: f64,
}

impl ObjectClass {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, scenario: Scenario, weight: f64) -> Self {
        ObjectClass {
            label: label.into(),
            scenario,
            weight,
        }
    }
}

/// Validate that class weights form a distribution.
pub fn check_weights(classes: &[ObjectClass]) -> Result<(), String> {
    if classes.is_empty() {
        return Err("no object classes".into());
    }
    let total: f64 = classes.iter().map(|c| c.weight).sum();
    if (total - 1.0).abs() > 1e-6 {
        return Err(format!("class weights sum to {total}, expected 1"));
    }
    if classes.iter().any(|c| c.weight < 0.0) {
        return Err("negative class weight".into());
    }
    Ok(())
}

/// System-level `acc` of one protocol over a composite workload:
/// `acc = Σ_classes weight · acc(protocol, class scenario)`.
pub fn composite_acc(
    protocol: &dyn CoherenceProtocol,
    sys: &SystemParams,
    classes: &[ObjectClass],
) -> Result<f64, AnalyzeError> {
    let mut total = 0.0;
    for class in classes {
        if class.weight == 0.0 {
            continue;
        }
        let acc = analyze(protocol, sys, &class.scenario, AnalyzeOpts::default())?.acc;
        total += class.weight * acc;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repmem_core::ProtocolKind;
    use repmem_protocols::protocol;

    fn classes() -> Vec<ObjectClass> {
        vec![
            ObjectClass::new("private", Scenario::ideal(0.5).unwrap(), 0.6),
            ObjectClass::new(
                "read-shared",
                Scenario::read_disturbance(0.05, 0.1, 4).unwrap(),
                0.4,
            ),
        ]
    }

    #[test]
    fn weights_validate() {
        assert!(check_weights(&classes()).is_ok());
        let mut bad = classes();
        bad[0].weight = 0.9;
        assert!(check_weights(&bad).is_err());
        assert!(check_weights(&[]).is_err());
    }

    #[test]
    fn mixture_is_the_weighted_sum() {
        let sys = SystemParams::new(8, 100, 20);
        let cls = classes();
        let p = protocol(ProtocolKind::WriteThrough);
        let whole = composite_acc(p, &sys, &cls).unwrap();
        let a0 = analyze(p, &sys, &cls[0].scenario, AnalyzeOpts::default())
            .unwrap()
            .acc;
        let a1 = analyze(p, &sys, &cls[1].scenario, AnalyzeOpts::default())
            .unwrap()
            .acc;
        assert!((whole - (0.6 * a0 + 0.4 * a1)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class_matches_plain_analysis() {
        let sys = SystemParams::new(6, 50, 10);
        let scenario = Scenario::multiple_centers(0.4, 3).unwrap();
        let cls = vec![ObjectClass::new("all", scenario.clone(), 1.0)];
        for kind in ProtocolKind::ALL {
            let c = composite_acc(protocol(kind), &sys, &cls).unwrap();
            let a = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default())
                .unwrap()
                .acc;
            assert!((c - a).abs() < 1e-12, "{kind:?}");
        }
    }
}
