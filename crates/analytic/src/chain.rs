//! Markov-chain construction and stationary analysis.
//!
//! Under the paper's workload model (§4.2) every operation is an
//! independent trial from a fixed sample space of *(node, read/write)*
//! events. The global copy-state therefore evolves as a finite Markov
//! chain whose transitions are exactly the oracle's atomic operation
//! executions. The steady-state average communication cost (paper eq. 1)
//! is
//!
//! ```text
//! acc = Σ_states π(s) · Σ_events P(ev) · cost(s, ev)
//! ```
//!
//! and the trace probabilities `π_h` fall out of the same sum keyed by
//! trace signature.
//!
//! ## Exact lumping
//!
//! Clients with identical `(read_prob, write_prob)` that are not pointed
//! at by the ownership register are *exchangeable*: permuting their copy
//! states permutes trajectories without changing costs. States are
//! canonicalized by sorting member states within each exchangeability
//! class (silent non-actor clients form one more class), which collapses,
//! e.g., the `2^10` disturbing-client validity vectors of the paper's
//! Figure 5 configuration into 11 count vectors. Transitions are expanded
//! per concrete member and merged by canonical target, so the lumping is
//! exact — `AnalyzeOpts { lump: false }` keeps the raw product space and
//! is used in tests and the ablation bench to confirm equality.
//!
//! Per-initiator trace probabilities need one extra step: a lumped state
//! stores only the first concrete representative it was discovered with,
//! which breaks the symmetry between class members (the representative
//! may have client 1 VALID and client 2 INVALID, while the lumped state
//! equally represents the mirrored arrangement). The stationary
//! distribution of the symmetric full chain is uniform over each orbit,
//! so the trace contribution of an event at node `n` in class `C` is
//! symmetrized: the cost outcome is averaged over executing the event at
//! every member of `C` in the representative, keeping `n` as the
//! reported initiator.

use crate::oracle::{execute, Global};
use repmem_core::{CoherenceProtocol, NodeId, OpKind, Scenario, SystemParams, TraceSig};
use repmem_linalg::{
    stationary_dense, stationary_power, StationaryError, StationaryOpts, Triplets,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Options for [`analyze`].
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOpts {
    /// Lump exchangeable clients (exact; keep on except for ablations).
    pub lump: bool,
    /// Stationary-solver options (for the iterative path).
    pub stationary: StationaryOpts,
    /// Chains up to this size are solved directly by Gaussian
    /// elimination; larger chains use damped power iteration.
    pub dense_cutoff: usize,
    /// Abort if the reachable state space exceeds this bound.
    pub max_states: usize,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            lump: true,
            stationary: StationaryOpts::default(),
            dense_cutoff: 256,
            max_states: 2_000_000,
        }
    }
}

/// Errors from [`analyze`].
#[derive(Debug)]
pub enum AnalyzeError {
    /// An actor's node id lies outside the system.
    ActorOutOfRange(NodeId),
    /// The reachable chain exceeded `max_states`.
    TooManyStates(usize),
    /// The stationary solver failed.
    Solver(StationaryError),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::ActorOutOfRange(n) => write!(f, "actor {n} outside the system"),
            AnalyzeError::TooManyStates(n) => write!(f, "reachable chain exceeds {n} states"),
            AnalyzeError::Solver(e) => write!(f, "stationary solve failed: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Result of a chain analysis.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Steady-state average communication cost per operation (`acc`).
    pub acc: f64,
    /// Number of (canonical) states in the reachable chain.
    pub n_states: usize,
    /// Steady-state probability of each observed trace signature; sums
    /// to 1.
    pub trace_probs: BTreeMap<TraceSig, f64>,
    /// L1 residual of the stationary solve (diagnostic).
    pub residual: f64,
}

impl ChainResult {
    /// Probability mass of traces with non-zero cost (the paper's "how
    /// often does an operation communicate at all").
    pub fn communicating_fraction(&self) -> f64 {
        self.trace_probs
            .iter()
            .filter(|(sig, _)| sig.cost > 0)
            .map(|(_, p)| p)
            .sum()
    }
}

/// Exchangeability classes: vectors of node ids whose states may be
/// sorted together, plus the list of "pinned" nodes (home + any actor
/// with a unique probability signature).
struct Lumper {
    /// Nodes whose state is kept positionally (home first).
    pinned: Vec<NodeId>,
    /// Exchangeability classes (each sorted by node id).
    classes: Vec<Vec<NodeId>>,
    lump: bool,
}

impl Lumper {
    fn new(sys: &SystemParams, scenario: &Scenario, lump: bool) -> Self {
        let home = sys.home();
        let mut classes: Vec<(u64, u64, Vec<NodeId>)> = Vec::new();
        let mut pinned = vec![home];
        for a in &scenario.actors {
            if a.node == home {
                continue; // home is always pinned
            }
            let key = (a.read_prob.to_bits(), a.write_prob.to_bits());
            match classes.iter_mut().find(|(r, w, _)| (*r, *w) == key) {
                Some((_, _, members)) => members.push(a.node),
                None => classes.push((key.0, key.1, vec![a.node])),
            }
        }
        // Silent clients (no scenario entry) form one more class.
        let mut silent: Vec<NodeId> = sys
            .clients()
            .filter(|c| *c != home && !scenario.actors.iter().any(|a| a.node == *c))
            .collect();
        silent.sort_unstable();
        let mut classes: Vec<Vec<NodeId>> = classes
            .into_iter()
            .map(|(_, _, mut m)| {
                m.sort_unstable();
                m
            })
            .collect();
        if !silent.is_empty() {
            classes.push(silent);
        }
        // Singleton classes are effectively pinned; keep them as classes
        // anyway (sorting a singleton is free and the code stays uniform).
        pinned.dedup();
        Lumper {
            pinned,
            classes,
            lump,
        }
    }

    /// The non-singleton exchangeability class containing `n`, when
    /// lumping is on (trace attribution must symmetrize over it).
    fn class_of(&self, n: NodeId) -> Option<&[NodeId]> {
        if !self.lump {
            return None;
        }
        self.classes
            .iter()
            .find(|c| c.len() > 1 && c.contains(&n))
            .map(Vec::as_slice)
    }

    /// Canonical key of a global state.
    fn key(&self, g: &Global) -> Vec<u8> {
        let mut key = Vec::with_capacity(2 + self.pinned.len() + self.classes.len() * 8);
        for &n in &self.pinned {
            key.push(g.states[n.idx()] as u8);
        }
        if self.lump {
            // Owner encoding: pinned index, or (class, state) — the
            // owner's identity within a class is irrelevant, only that
            // the class contains an owner in a given state.
            match self.pinned.iter().position(|&n| n == g.owner) {
                Some(i) => {
                    key.push(0);
                    key.push(i as u8);
                }
                None => {
                    let (ci, _) = self
                        .classes
                        .iter()
                        .enumerate()
                        .find(|(_, c)| c.contains(&g.owner))
                        .expect("owner must be pinned or in a class");
                    key.push(1);
                    key.push(ci as u8);
                }
            }
            for class in &self.classes {
                // Owner-first, then sorted member states.
                let mut member_states: Vec<u8> = Vec::with_capacity(class.len());
                for &n in class {
                    if n == g.owner {
                        key.push(g.states[n.idx()] as u8);
                    } else {
                        member_states.push(g.states[n.idx()] as u8);
                    }
                }
                member_states.sort_unstable();
                key.extend_from_slice(&member_states);
                key.push(255); // class separator
            }
        } else {
            key.push(g.owner.0 as u8);
            key.push((g.owner.0 >> 8) as u8);
            for s in &g.states {
                key.push(*s as u8);
            }
        }
        key
    }
}

/// The explicit chain model: transition matrix, per-state expected cost,
/// and per-state trace contributions. Exposed so that transient (burn-in)
/// analysis can iterate the chain from its initial state.
#[derive(Debug, Clone)]
pub struct ChainModel {
    /// Row-stochastic transition matrix over canonical states.
    pub matrix: repmem_linalg::Csr,
    /// Expected one-step communication cost from each state.
    pub expected_cost: Vec<f64>,
    /// Per-state trace contributions `(signature, event probability)`.
    pub trace_contrib: Vec<Vec<(TraceSig, f64)>>,
    /// Index of the initial state (always 0 by construction).
    pub initial: usize,
}

impl ChainModel {
    /// Number of canonical states.
    pub fn n_states(&self) -> usize {
        self.matrix.n_rows()
    }

    /// Solve for the stationary distribution and assemble the result.
    pub fn solve(&self, opts: &AnalyzeOpts) -> Result<ChainResult, AnalyzeError> {
        let n = self.n_states();
        let pi = if n <= opts.dense_cutoff {
            stationary_dense(&self.matrix.to_dense()).map_err(AnalyzeError::Solver)?
        } else {
            stationary_power(&self.matrix, opts.stationary).map_err(AnalyzeError::Solver)?
        };
        let acc = pi.iter().zip(&self.expected_cost).map(|(p, c)| p * c).sum();
        let mut trace_probs: BTreeMap<TraceSig, f64> = BTreeMap::new();
        for (si, contribs) in self.trace_contrib.iter().enumerate() {
            if pi[si] == 0.0 {
                continue;
            }
            for (sig, prob) in contribs {
                *trace_probs.entry(*sig).or_insert(0.0) += pi[si] * prob;
            }
        }
        let residual = repmem_linalg::stationary::residual(&self.matrix, &pi);
        Ok(ChainResult {
            acc,
            n_states: n,
            trace_probs,
            residual,
        })
    }
}

/// Build the chain model for `protocol` under `scenario` without solving.
pub fn build(
    protocol: &dyn CoherenceProtocol,
    sys: &SystemParams,
    scenario: &Scenario,
    opts: AnalyzeOpts,
) -> Result<ChainModel, AnalyzeError> {
    for a in &scenario.actors {
        if a.node.idx() >= sys.n_nodes() {
            return Err(AnalyzeError::ActorOutOfRange(a.node));
        }
    }
    let events: Vec<(NodeId, OpKind, f64)> = scenario.events().collect();
    let lumper = Lumper::new(sys, scenario, opts.lump);

    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut reps: Vec<Global> = Vec::new();
    let mut frontier: VecDeque<usize> = VecDeque::new();

    let g0 = Global::initial(protocol, sys);
    index.insert(lumper.key(&g0), 0);
    reps.push(g0);
    frontier.push_back(0);

    // Per-state expected cost and trace contributions.
    let mut expected_cost: Vec<f64> = Vec::new();
    let mut trace_contrib: Vec<Vec<(TraceSig, f64)>> = Vec::new();
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();

    while let Some(si) = frontier.pop_front() {
        let rep = reps[si].clone();
        let mut ec = 0.0;
        let mut traces = Vec::with_capacity(events.len());
        for &(node, op, prob) in &events {
            let mut g = rep.clone();
            let outcome = execute(protocol, sys, &mut g, node, op);
            let key = lumper.key(&g);
            let ti = match index.get(&key) {
                Some(&t) => t,
                None => {
                    let t = reps.len();
                    if t >= opts.max_states {
                        return Err(AnalyzeError::TooManyStates(opts.max_states));
                    }
                    index.insert(key, t);
                    reps.push(g);
                    frontier.push_back(t);
                    t
                }
            };
            edges.push((si, ti, prob));
            ec += prob * outcome.cost as f64;
            // Per-initiator trace attribution: within a lumped state the
            // concrete arrangements of an exchangeability class are
            // equally likely, so average the cost outcome over executing
            // at every class member, reporting `node` as the initiator.
            match lumper.class_of(node) {
                Some(class) => {
                    let w = prob / class.len() as f64;
                    for &m in class {
                        let mut gm = rep.clone();
                        let o = execute(protocol, sys, &mut gm, m, op);
                        traces.push((
                            TraceSig {
                                initiator: node,
                                op,
                                cost: o.cost,
                            },
                            w,
                        ));
                    }
                }
                None => traces.push((outcome.sig, prob)),
            }
        }
        // Keep the per-state vectors aligned with state indices.
        while expected_cost.len() <= si {
            expected_cost.push(0.0);
            trace_contrib.push(Vec::new());
        }
        expected_cost[si] = ec;
        trace_contrib[si] = traces;
    }

    let n = reps.len();
    let mut trips = Triplets::new(n, n);
    for (s, t, p) in edges {
        trips.add(s, t, p);
    }
    Ok(ChainModel {
        matrix: trips.build(),
        expected_cost,
        trace_contrib,
        initial: 0,
    })
}

/// Build and solve the chain for `protocol` under `scenario`.
pub fn analyze(
    protocol: &dyn CoherenceProtocol,
    sys: &SystemParams,
    scenario: &Scenario,
    opts: AnalyzeOpts,
) -> Result<ChainResult, AnalyzeError> {
    build(protocol, sys, scenario, opts)?.solve(&opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repmem_core::ProtocolKind;
    use repmem_protocols::protocol;

    fn rd(p: f64, sigma: f64, a: usize) -> Scenario {
        Scenario::read_disturbance(p, sigma, a).unwrap()
    }

    #[test]
    fn write_through_matches_paper_equation_3() {
        let sys = SystemParams::new(6, 100, 30);
        let (p, sigma, a) = (0.3, 0.05, 3);
        let r = analyze(
            protocol(ProtocolKind::WriteThrough),
            &sys,
            &rd(p, sigma, a),
            AnalyzeOpts::default(),
        )
        .unwrap();
        // acc = [p(1-p-aσ)/(1-aσ) + aσp/(p+σ)](S+2) + p(P+N)   (eq. 3)
        let q = a as f64 * sigma;
        let pi2 = p * (1.0 - p - q) / (1.0 - q) + q * p / (p + sigma);
        let expect = pi2 * (sys.s + 2) as f64 + p * (sys.p as f64 + sys.n_clients as f64);
        assert!(
            (r.acc - expect).abs() < 1e-9,
            "acc {} vs eq3 {}",
            r.acc,
            expect
        );
    }

    #[test]
    fn trace_probabilities_sum_to_one() {
        let sys = SystemParams::new(5, 50, 10);
        for kind in ProtocolKind::ALL {
            let r = analyze(
                protocol(kind),
                &sys,
                &rd(0.2, 0.1, 2),
                AnalyzeOpts::default(),
            )
            .unwrap();
            let total: f64 = r.trace_probs.values().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{kind:?}: trace probs sum {total}"
            );
            assert!(r.residual < 1e-9, "{kind:?}: residual {}", r.residual);
        }
    }

    #[test]
    fn lumped_equals_unlumped() {
        let sys = SystemParams::new(6, 40, 7);
        for kind in ProtocolKind::ALL {
            for scenario in [
                rd(0.25, 0.08, 4),
                Scenario::write_disturbance(0.2, 0.05, 3).unwrap(),
                Scenario::multiple_centers(0.3, 3).unwrap(),
            ] {
                let lumped =
                    analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default()).unwrap();
                let full = analyze(
                    protocol(kind),
                    &sys,
                    &scenario,
                    AnalyzeOpts {
                        lump: false,
                        ..AnalyzeOpts::default()
                    },
                )
                .unwrap();
                assert!(
                    (lumped.acc - full.acc).abs() < 1e-8,
                    "{kind:?}: lumped {} vs full {}",
                    lumped.acc,
                    full.acc
                );
                assert!(lumped.n_states <= full.n_states);
            }
        }
    }

    #[test]
    fn zero_write_probability_costs_nothing() {
        // §5.1: for p=0 all protocols incur acc=0.
        let sys = SystemParams::new(8, 5000, 30);
        let scenario = rd(0.0, 0.1, 4);
        for kind in ProtocolKind::ALL {
            let r = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default()).unwrap();
            assert!(r.acc.abs() < 1e-9, "{kind:?}: acc {} for p=0", r.acc);
        }
    }

    #[test]
    fn ideal_workload_limits_match_section_5() {
        // §5.1: σ=0 — Synapse, Write-Once, Illinois, Berkeley free;
        // WT = p((1-p)(S+2)+P+N); WT-V = p(P+N+2);
        // Dragon = pN(P+1); Firefly = p(N(P+1)+1).
        let sys = SystemParams::new(10, 200, 30);
        let p = 0.35;
        let scenario = Scenario::ideal(p).unwrap();
        let (nf, sf, pf) = (sys.n_clients as f64, sys.s as f64, sys.p as f64);
        let expectations: Vec<(ProtocolKind, f64)> = vec![
            (
                ProtocolKind::WriteThrough,
                p * ((1.0 - p) * (sf + 2.0) + pf + nf),
            ),
            (ProtocolKind::WriteThroughV, p * (pf + nf + 2.0)),
            (ProtocolKind::WriteOnce, 0.0),
            (ProtocolKind::Synapse, 0.0),
            (ProtocolKind::Illinois, 0.0),
            (ProtocolKind::Berkeley, 0.0),
            (ProtocolKind::Dragon, p * nf * (pf + 1.0)),
            (ProtocolKind::Firefly, p * (nf * (pf + 1.0) + 1.0)),
        ];
        for (kind, expect) in expectations {
            let r = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default()).unwrap();
            assert!(
                (r.acc - expect).abs() < 1e-8,
                "{kind:?}: acc {} vs ideal-workload {}",
                r.acc,
                expect
            );
        }
    }

    #[test]
    fn figure5_configuration_is_tractable() {
        // N=50, a=10 — the lumped chain must stay small.
        let sys = SystemParams::figure5();
        let r = analyze(
            protocol(ProtocolKind::Synapse),
            &sys,
            &rd(0.3, 0.05, 10),
            AnalyzeOpts::default(),
        )
        .unwrap();
        assert!(
            r.n_states < 500,
            "lumped Synapse chain has {} states",
            r.n_states
        );
        assert!(r.acc > 0.0);
    }
}
