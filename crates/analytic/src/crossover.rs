//! The §5.1 comparison analysis: dominance relations, crossover lines and
//! region maps between protocols.

use crate::closed::closed_rd;
use repmem_core::{ProtocolKind, SystemParams};

/// The Write-Through / Write-Through-V crossover line under read
/// disturbance (paper §5.1): `p = −aσ·S/(S+2) + S/(S+2)`, i.e.
/// `p* = (1 − aσ)·S/(S+2)`. Above the line (large `p`) Write-Through is
/// cheaper (a WT-V write pays two extra sequencing tokens per write,
/// which stops paying off once re-read misses become rare).
pub fn wt_vs_wtv_line(sys: &SystemParams, sigma: f64, a: usize) -> f64 {
    let s = sys.s as f64;
    (1.0 - a as f64 * sigma) * s / (s + 2.0)
}

/// Which of two protocols is cheaper at a read-disturbance point (ties
/// return `None`).
pub fn cheaper_rd(
    lhs: ProtocolKind,
    rhs: ProtocolKind,
    sys: &SystemParams,
    p: f64,
    sigma: f64,
    a: usize,
) -> Option<ProtocolKind> {
    let l = closed_rd(lhs, sys, p, sigma, a);
    let r = closed_rd(rhs, sys, p, sigma, a);
    if (l - r).abs() < 1e-12 {
        None
    } else if l < r {
        Some(lhs)
    } else {
        Some(rhs)
    }
}

/// The protocol with minimum read-disturbance cost at a point.
pub fn best_rd(sys: &SystemParams, p: f64, sigma: f64, a: usize) -> (ProtocolKind, f64) {
    ProtocolKind::ALL
        .into_iter()
        .map(|k| (k, closed_rd(k, sys, p, sigma, a)))
        .min_by(|l, r| l.1.total_cmp(&r.1))
        .expect("eight protocols")
}

/// A region map over the `(σ, p)` plane: for each grid cell, the cheapest
/// protocol under read disturbance. Reproduces the qualitative structure
/// of the paper's Figure 5 comparisons.
pub struct RegionMap {
    /// Sampled σ values (columns).
    pub sigmas: Vec<f64>,
    /// Sampled p values (rows).
    pub ps: Vec<f64>,
    /// `winners[row][col]` = cheapest protocol at `(ps[row], sigmas[col])`.
    pub winners: Vec<Vec<ProtocolKind>>,
}

impl RegionMap {
    /// Sample an `rows × cols` grid with `p + aσ ≤ 1` enforced (cells
    /// beyond the simplex repeat the boundary winner).
    pub fn compute(sys: &SystemParams, a: usize, rows: usize, cols: usize) -> RegionMap {
        let sigmas: Vec<f64> = (0..cols)
            .map(|j| j as f64 / (cols.max(2) - 1) as f64 / a as f64)
            .collect();
        let ps: Vec<f64> = (0..rows)
            .map(|i| i as f64 / (rows.max(2) - 1) as f64)
            .collect();
        let winners = ps
            .iter()
            .map(|&p| {
                sigmas
                    .iter()
                    .map(|&sigma| {
                        let sigma = sigma.min((1.0 - p).max(0.0) / a as f64);
                        best_rd(sys, p, sigma, a).0
                    })
                    .collect()
            })
            .collect();
        RegionMap {
            sigmas,
            ps,
            winners,
        }
    }

    /// Count cells won by each protocol.
    pub fn tally(&self) -> Vec<(ProtocolKind, usize)> {
        let mut counts: Vec<(ProtocolKind, usize)> =
            ProtocolKind::ALL.into_iter().map(|k| (k, 0)).collect();
        for row in &self.winners {
            for w in row {
                counts
                    .iter_mut()
                    .find(|(k, _)| k == w)
                    .expect("known kind")
                    .1 += 1;
            }
        }
        counts
    }
}

/// Find the empirical crossover `p` between two protocols at fixed
/// `(σ, a)` by bisection on the sign of the cost difference; `None` if no
/// sign change exists on `(lo, hi)`.
pub fn crossover_p(
    lhs: ProtocolKind,
    rhs: ProtocolKind,
    sys: &SystemParams,
    sigma: f64,
    a: usize,
    lo: f64,
    hi: f64,
) -> Option<f64> {
    let diff = |p: f64| closed_rd(lhs, sys, p, sigma, a) - closed_rd(rhs, sys, p, sigma, a);
    let (mut lo, mut hi) = (lo, hi);
    let (dlo, dhi) = (diff(lo), diff(hi));
    if dlo == 0.0 {
        return Some(lo);
    }
    if dlo.signum() == dhi.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let dm = diff(mid);
        if dm == 0.0 {
            return Some(mid);
        }
        if dm.signum() == dlo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// The availability premium of the sequencer-free Quorum protocol over a
/// sequencer protocol at a read-disturbance point: `acc_Q − acc_kind`.
///
/// Positive means the quorum rounds cost that much *extra* per operation
/// — the price paid for surviving a minority of dead replicas with no
/// recovery protocol at all.
pub fn quorum_premium(kind: ProtocolKind, sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
    closed_rd(ProtocolKind::Quorum, sys, p, sigma, a) - closed_rd(kind, sys, p, sigma, a)
}

/// Break-even kill rate against a sequencer protocol.
///
/// Model a node loss as an event arriving once every `1/κ` operations
/// that costs the sequencer family a recovery `penalty` (in the same
/// communication-cost units: re-election, copy re-fetch, failed-op
/// retries) while costing Quorum nothing (a minority loss leaves every
/// round completing). The effective costs cross at
///
/// `κ* = (acc_Q − acc_kind) / penalty`
///
/// — above that kill rate the quorum protocol is cheaper outright.
/// `None` when there is no break-even: a non-positive premium means
/// Quorum already wins at κ = 0 (and a non-positive penalty prices
/// kills at nothing, so the sequencer never loses).
pub fn quorum_break_even_kill_rate(
    kind: ProtocolKind,
    sys: &SystemParams,
    p: f64,
    sigma: f64,
    a: usize,
    penalty: f64,
) -> Option<f64> {
    let premium = quorum_premium(kind, sys, p, sigma, a);
    if premium <= 0.0 {
        return None;
    }
    if penalty <= 0.0 {
        return None;
    }
    Some(premium / penalty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wt_wtv_crossover_matches_printed_line() {
        // §5.1: the line p = (1−aσ)·S/(S+2) separates the WT / WT-V
        // minimum-cost regions. Our closed forms must cross exactly there.
        let sys = SystemParams::new(20, 500, 30);
        for (sigma, a) in [(0.02, 4), (0.05, 2), (0.0, 1)] {
            let line = wt_vs_wtv_line(&sys, sigma, a);
            let found = crossover_p(
                ProtocolKind::WriteThrough,
                ProtocolKind::WriteThroughV,
                &sys,
                sigma,
                a,
                1e-6,
                1.0 - a as f64 * sigma - 1e-6,
            )
            .expect("WT/WT-V must cross");
            assert!((found - line).abs() < 1e-6, "found {found}, line {line}");
            // WT-V cheaper below the line, WT cheaper above.
            let below = cheaper_rd(
                ProtocolKind::WriteThrough,
                ProtocolKind::WriteThroughV,
                &sys,
                line * 0.5,
                sigma,
                a,
            );
            let above = cheaper_rd(
                ProtocolKind::WriteThrough,
                ProtocolKind::WriteThroughV,
                &sys,
                (line + 1.0 - a as f64 * sigma) * 0.5,
                sigma,
                a,
            );
            assert_eq!(below, Some(ProtocolKind::WriteThroughV));
            assert_eq!(above, Some(ProtocolKind::WriteThrough));
        }
    }

    #[test]
    fn berkeley_dominates_invalidation_protocols_on_figure5_grid() {
        // §5.1: "Protocol Berkeley incurs the minimum communication cost
        // in comparison with Write-Through, Write-Through-V, Write-Once,
        // Illinois and Synapse."
        let sys = SystemParams::figure5();
        let a = 10;
        for pi in 1..10 {
            for si in 1..10 {
                let p = pi as f64 / 10.0;
                let sigma = si as f64 / 10.0 * (1.0 - p) / a as f64;
                let b = closed_rd(ProtocolKind::Berkeley, &sys, p, sigma, a);
                for other in [
                    ProtocolKind::WriteThrough,
                    ProtocolKind::WriteThroughV,
                    ProtocolKind::WriteOnce,
                    ProtocolKind::Illinois,
                    ProtocolKind::Synapse,
                ] {
                    let o = closed_rd(other, &sys, p, sigma, a);
                    assert!(
                        b <= o + 1e-9,
                        "Berkeley {b} beaten by {other:?} {o} at (p={p}, σ={sigma})"
                    );
                }
            }
        }
    }

    #[test]
    fn illinois_never_worse_than_synapse() {
        let sys = SystemParams::figure5();
        let a = 10;
        for pi in 0..=10 {
            for si in 0..=10 {
                let p = pi as f64 / 10.0;
                let sigma = si as f64 / 10.0 * (1.0 - p) / a as f64;
                let ill = closed_rd(ProtocolKind::Illinois, &sys, p, sigma, a);
                let syn = closed_rd(ProtocolKind::Synapse, &sys, p, sigma, a);
                assert!(
                    ill <= syn + 1e-9,
                    "Illinois {ill} > Synapse {syn} at (p={p}, σ={sigma})"
                );
            }
        }
    }

    #[test]
    fn berkeley_beats_dragon_when_np_exceeds_s_plus_2() {
        // §5.1: for NP > S+2 Berkeley always beats Dragon.
        let sys = SystemParams::new(50, 100, 30); // NP = 1500 > 102
        let a = 10;
        for pi in 1..10 {
            for si in 1..10 {
                let p = pi as f64 / 10.0;
                let sigma = si as f64 / 10.0 * (1.0 - p) / a as f64;
                let b = closed_rd(ProtocolKind::Berkeley, &sys, p, sigma, a);
                let d = closed_rd(ProtocolKind::Dragon, &sys, p, sigma, a);
                assert!(
                    b <= d + 1e-9,
                    "Berkeley {b} > Dragon {d} at (p={p}, σ={sigma})"
                );
            }
        }
    }

    #[test]
    fn dragon_wins_a_region_when_np_below_s_plus_2() {
        // For NP < S+2 a crossover line exists: Dragon wins at small p /
        // large σ, Berkeley at large p.
        // Our Berkeley/Dragon closed forms cross at
        // p* = σ(N + S + 2 − N(P+1))/(N(P+1)) (a=1): a positive-slope
        // line through the origin of the (σ, p) plane, the same structure
        // as the paper's printed p = σ(S+2−NP)/(P+N+2) (see DESIGN.md §4).
        let sys = SystemParams::figure5(); // NP = 1500 < 5002
        let a = 1;
        let sigma = 0.01;
        let d_small = cheaper_rd(
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            &sys,
            0.005,
            sigma,
            a,
        );
        let d_large = cheaper_rd(
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            &sys,
            0.5,
            sigma,
            a,
        );
        assert_eq!(d_small, Some(ProtocolKind::Dragon));
        assert_eq!(d_large, Some(ProtocolKind::Berkeley));
        let cross = crossover_p(
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            &sys,
            sigma,
            a,
            0.005,
            0.5,
        )
        .expect("Dragon/Berkeley must cross");
        // Crossing point scales linearly in σ (line through the origin).
        let cross2 = crossover_p(
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            &sys,
            2.0 * sigma,
            a,
            0.005,
            0.9,
        )
        .expect("crossing at doubled σ");
        assert!(
            (cross2 / cross - 2.0).abs() < 0.02,
            "slope not linear: {cross} vs {cross2}"
        );
    }

    #[test]
    fn synapse_vs_wtv_region_structure() {
        // §5.1: when P < S+N the (σ, p) plane splits into a Synapse region
        // and a WT-V region along a line through the origin.
        let sys = SystemParams::new(50, 5000, 30); // P << S+N
        let a = 10;
        // Tiny disturbance: Synapse's free steady-state writes win (its
        // ideal-workload cost is 0 while WT-V pays p(P+N+2) per write).
        let low = cheaper_rd(
            ProtocolKind::Synapse,
            ProtocolKind::WriteThroughV,
            &sys,
            0.3,
            1e-4,
            a,
        );
        assert_eq!(low, Some(ProtocolKind::Synapse));
        // Heavy disturbance: Synapse pays ~2S+N+2 per disturbing read and
        // S+N+1 per re-acquisition, WT-V only S+2 per disturbing read.
        let heavy = cheaper_rd(
            ProtocolKind::Synapse,
            ProtocolKind::WriteThroughV,
            &sys,
            0.05,
            0.09,
            a,
        );
        assert_eq!(heavy, Some(ProtocolKind::WriteThroughV));
    }

    #[test]
    fn quorum_break_even_prices_availability() {
        let sys = SystemParams::figure5();
        let (p, sigma, a) = (0.3, 0.02, 10);
        // Against Berkeley (the paper's overall winner) the quorum
        // premium is positive: availability is not free.
        let premium = quorum_premium(ProtocolKind::Berkeley, &sys, p, sigma, a);
        assert!(premium > 0.0);
        // The break-even kill rate scales inversely with the penalty a
        // sequencer loss costs, and at that rate the effective costs
        // really do cross.
        let penalty = 50_000.0;
        let k = quorum_break_even_kill_rate(ProtocolKind::Berkeley, &sys, p, sigma, a, penalty)
            .expect("positive premium must break even");
        assert!((k * penalty - premium).abs() < 1e-9);
        let k2 =
            quorum_break_even_kill_rate(ProtocolKind::Berkeley, &sys, p, sigma, a, 2.0 * penalty)
                .expect("break-even at doubled penalty");
        assert!((k2 * 2.0 - k / 1.0).abs() < 1e-12 || (k2 - k / 2.0).abs() < 1e-12);
        let seq = closed_rd(ProtocolKind::Berkeley, &sys, p, sigma, a);
        let q = closed_rd(ProtocolKind::Quorum, &sys, p, sigma, a);
        assert!(seq + 2.0 * k * penalty > q, "above κ*, quorum wins");
        assert!(seq + 0.5 * k * penalty < q, "below κ*, the sequencer wins");
        // Degenerate cases: no crossover without a premium or a penalty.
        assert_eq!(
            quorum_break_even_kill_rate(ProtocolKind::Quorum, &sys, p, sigma, a, penalty),
            None
        );
        assert_eq!(
            quorum_break_even_kill_rate(ProtocolKind::Berkeley, &sys, p, sigma, a, 0.0),
            None
        );
    }

    #[test]
    fn region_map_covers_grid() {
        let sys = SystemParams::figure5();
        let map = RegionMap::compute(&sys, 10, 8, 8);
        assert_eq!(map.winners.len(), 8);
        assert_eq!(map.winners[0].len(), 8);
        let total: usize = map.tally().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 64);
    }
}
