//! Closed-form steady-state average communication costs.
//!
//! Write-Through under all three deviations is taken verbatim from the
//! paper (equations (3), (4), (5)). The remaining protocols' read-
//! disturbance forms reconstruct the paper's Table 6 (unreadable in the
//! available scan) by the paper's own renewal-argument methodology applied
//! to our protocol definitions; every formula here is property-tested
//! against the chain engine, so the algebra cannot drift from the
//! executable machines.
//!
//! ## Notation
//!
//! Per-trial event probabilities under **read disturbance** (§4.2):
//! activity-center write `p`, activity-center read `ρ = 1−p−aσ`, each of
//! `a` disturbing clients reads with `σ`; write `q = aσ` for the total
//! disturbance. The renewal argument: the state of a copy depends only on
//! the *most recent relevant event*, so state probabilities are ratios of
//! competing event rates (e.g. "the activity center's copy is exclusive"
//! ⟺ "the last of {write, any disturbing read} was the write" ⟹
//! probability `p/(p+q)`).

use repmem_core::{ProtocolKind, SystemParams};

/// `0` when the numerator vanishes (avoids 0/0 at workload corners).
#[inline]
fn frac(num: f64, den: f64) -> f64 {
    if num == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Paper eq. (3): Write-Through, read disturbance.
///
/// `acc = [p(1−p−aσ)/(1−aσ) + aσp/(p+σ)](S+2) + p(P+N)`
pub fn wt_rd(sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
    let q = a as f64 * sigma;
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    let pi2 = frac(p * (1.0 - p - q), 1.0 - q) + frac(q * p, p + sigma);
    pi2 * (s + 2.0) + p * (pc + n)
}

/// Paper eq. (4): Write-Through, write disturbance.
///
/// `acc = (1−p−aξ)(p+aξ)(S+2) + (p+aξ)(P+N)`
pub fn wt_wd(sys: &SystemParams, p: f64, xi: f64, a: usize) -> f64 {
    let x = a as f64 * xi;
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    (1.0 - p - x) * (p + x) * (s + 2.0) + (p + x) * (pc + n)
}

/// Paper eq. (5): Write-Through, multiple activity centers.
///
/// `acc = [pβ(1−p)/(1+(β−1)p)](S+2) + p(P+N)`
pub fn wt_mc(sys: &SystemParams, p: f64, beta: usize) -> f64 {
    let b = beta as f64;
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    frac(p * b * (1.0 - p), 1.0 + (b - 1.0) * p) * (s + 2.0) + p * (pc + n)
}

/// Write-Through-V, read disturbance.
///
/// The writer's copy stays VALID, so only disturbing clients miss:
/// `acc = [aσp/(p+σ)](S+2) + p(P+N+2)`.
pub fn wtv_rd(sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
    let q = a as f64 * sigma;
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    frac(q * p, p + sigma) * (s + 2.0) + p * (pc + n + 2.0)
}

/// Write-Through-V, write disturbance.
///
/// The activity center's copy is invalidated only by the `a` writers:
/// `acc = (1−p−aξ)·aξ·(S+2) + (p+aξ)(P+N+2)`.
pub fn wtv_wd(sys: &SystemParams, p: f64, xi: f64, a: usize) -> f64 {
    let x = a as f64 * xi;
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    (1.0 - p - x) * x * (s + 2.0) + (p + x) * (pc + n + 2.0)
}

/// Write-Once, read disturbance.
///
/// Joint chain of (activity-center state, one disturbing copy):
/// `π_(R,I) = pq/(p+q)²`, `π_(D,I) = p²/(p+q)²`,
/// `π_(V,I) = p(q−σ)/((p+q)(p+σ))`, and
///
/// ```text
/// acc = p[ q/(p+q)·(P+N) + π_(R,I) ]
///     + aσ[ π_(R,I)(S+3) + π_(D,I)(2S+4) + π_(V,I)(S+2) ]
/// ```
///
/// (write-through `P+N` from VALID, one DIRTY-NOTE token from RESERVED,
/// free from DIRTY; a disturbing read pays `S+3` when it downgrades the
/// RESERVED holder, `2S+4` when it recalls the DIRTY copy, `S+2` plain).
pub fn wo_rd(sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
    let q = a as f64 * sigma;
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    let pq = p + q;
    let pi_a = frac(p * q, pq * pq);
    let pi_b = frac(p * p, pq * pq);
    let pi_c = frac(p * (q - sigma), pq * (p + sigma));
    p * (frac(q, pq) * (pc + n) + pi_a)
        + a as f64 * sigma * (pi_a * (s + 3.0) + pi_b * (2.0 * s + 4.0) + pi_c * (s + 2.0))
}

/// Synapse, read disturbance.
///
/// Five-state joint chain of (activity-center state, one disturbing
/// copy) — see the module docs of `repmem_protocols::synapse` for the
/// cost inventory (`S+N+1` acquire, `2S+N+2` broadcast recall, `S+2`
/// plain miss; the recalled owner is invalidated, so the activity center
/// itself re-misses reads after a disturbance):
///
/// ```text
/// π₁ = p/(p+q)                      (D,I)
/// π₂ = π₁(q−σ)/(p+ρ+σ)              (I,I)
/// π₃ = σ(π₁+π₂)/(p+ρ)               (I,V)
/// π₄ = ρπ₂/(p+σ)                    (V,I)
/// acc = p(1−π₁)(S+N+1) + ρ(π₂+π₃)(S+2)
///     + aσ[π₁(2S+N+2) + (π₂+π₄)(S+2)]
/// ```
pub fn synapse_rd(sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
    let q = a as f64 * sigma;
    let rho = 1.0 - p - q;
    let (s, n) = (sys.s as f64, sys.n_clients as f64);
    let pi1 = frac(p, p + q);
    let pi2 = frac(pi1 * (q - sigma), p + rho + sigma);
    let pi3 = frac(sigma * (pi1 + pi2), p + rho);
    let pi4 = frac(rho * pi2, p + sigma);
    p * (1.0 - pi1) * (s + n + 1.0)
        + rho * (pi2 + pi3) * (s + 2.0)
        + a as f64 * sigma * (pi1 * (2.0 * s + n + 2.0) + (pi2 + pi4) * (s + 2.0))
}

/// Illinois, read disturbance.
///
/// Like Synapse but: re-acquisition after a disturbance is a data-less
/// upgrade (`N+1`), the recall is targeted (`2S+4`), and the recalled
/// owner keeps a VALID copy, so the activity center never misses reads in
/// steady state:
///
/// ```text
/// π_(D,I) = p/(p+q),  π_(V,I) = π_(D,I)(q−σ)/(p+σ)
/// acc = p(1−π_(D,I))(N+1) + aσ[π_(D,I)(2S+4) + π_(V,I)(S+2)]
/// ```
pub fn illinois_rd(sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
    let q = a as f64 * sigma;
    let (s, n) = (sys.s as f64, sys.n_clients as f64);
    let pi_di = frac(p, p + q);
    let pi_vi = frac(pi_di * (q - sigma), p + sigma);
    p * (1.0 - pi_di) * (n + 1.0) + a as f64 * sigma * (pi_di * (2.0 * s + 4.0) + pi_vi * (s + 2.0))
}

/// Berkeley, read disturbance.
///
/// The activity center becomes the sequencer (owner): its writes cost
/// one broadcast wave `N` only when a disturbing read moved it to
/// SHARED-DIRTY, and disturbing misses are served by the owner for `S+2`:
///
/// `acc = pN·q/(p+q) + aσ(S+2)·p/(p+σ)`
pub fn berkeley_rd(sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
    let q = a as f64 * sigma;
    let (s, n) = (sys.s as f64, sys.n_clients as f64);
    p * n * frac(q, p + q) + a as f64 * sigma * (s + 2.0) * frac(p, p + sigma)
}

/// Dragon, any client-driven workload with total write probability `w`:
/// `acc = w·N(P+1)` (reads never miss).
pub fn dragon(sys: &SystemParams, total_write: f64) -> f64 {
    total_write * sys.n_clients as f64 * (sys.p as f64 + 1.0)
}

/// Firefly, any client-driven workload with total write probability `w`:
/// `acc = w·(N(P+1)+1)` — Dragon plus the sequencing acknowledgement.
pub fn firefly(sys: &SystemParams, total_write: f64) -> f64 {
    total_write * (sys.n_clients as f64 * (sys.p as f64 + 1.0) + 1.0)
}

/// Quorum (SC-ABD), any workload with total write probability `w`.
///
/// Every operation runs a full two-phase majority round regardless of
/// replica state, so the cost is *state-independent*: a read pays
/// `N(2S+4)` (probe/vote then copy write-back/ack to all `N = n−1`
/// peers), a write pays `N(S+P+4)` (the commit wave carries parameters
/// instead of a second copy):
///
/// `acc = w·N(S+P+4) + (1−w)·N(2S+4)`
pub fn quorum(sys: &SystemParams, total_write: f64) -> f64 {
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    total_write * n * (s + pc + 4.0) + (1.0 - total_write) * n * (2.0 * s + 4.0)
}

/// Write-Through-V, multiple activity centers:
/// `acc = [(1−p)p(β−1)/(1+(β−1)p)](S+2) + p(P+N+2)`.
pub fn wtv_mc(sys: &SystemParams, p: f64, beta: usize) -> f64 {
    let b = beta as f64;
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    frac((1.0 - p) * p * (b - 1.0), 1.0 + (b - 1.0) * p) * (s + 2.0) + p * (pc + n + 2.0)
}

/// The reconstructed Table 6: read-disturbance closed form for any of the
/// eight protocols (plus the sequencer-free Quorum extension).
pub fn closed_rd(kind: ProtocolKind, sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
    match kind {
        ProtocolKind::WriteThrough => wt_rd(sys, p, sigma, a),
        ProtocolKind::WriteThroughV => wtv_rd(sys, p, sigma, a),
        ProtocolKind::WriteOnce => wo_rd(sys, p, sigma, a),
        ProtocolKind::Synapse => synapse_rd(sys, p, sigma, a),
        ProtocolKind::Illinois => illinois_rd(sys, p, sigma, a),
        ProtocolKind::Berkeley => berkeley_rd(sys, p, sigma, a),
        ProtocolKind::Dragon => dragon(sys, p),
        ProtocolKind::Firefly => firefly(sys, p),
        ProtocolKind::Quorum => quorum(sys, p),
    }
}

/// Write-disturbance closed forms, where derived (`None` = use the chain
/// engine).
pub fn closed_wd(kind: ProtocolKind, sys: &SystemParams, p: f64, xi: f64, a: usize) -> Option<f64> {
    let total = p + a as f64 * xi;
    match kind {
        ProtocolKind::WriteThrough => Some(wt_wd(sys, p, xi, a)),
        ProtocolKind::WriteThroughV => Some(wtv_wd(sys, p, xi, a)),
        ProtocolKind::Dragon => Some(dragon(sys, total)),
        ProtocolKind::Firefly => Some(firefly(sys, total)),
        ProtocolKind::Quorum => Some(quorum(sys, total)),
        _ => None,
    }
}

/// Multiple-activity-centers closed forms, where derived.
pub fn closed_mc(kind: ProtocolKind, sys: &SystemParams, p: f64, beta: usize) -> Option<f64> {
    match kind {
        ProtocolKind::WriteThrough => Some(wt_mc(sys, p, beta)),
        ProtocolKind::WriteThroughV => Some(wtv_mc(sys, p, beta)),
        ProtocolKind::Dragon => Some(dragon(sys, p)),
        ProtocolKind::Firefly => Some(firefly(sys, p)),
        ProtocolKind::Quorum => Some(quorum(sys, p)),
        _ => None,
    }
}

/// Ideal-workload (`σ = 0`) limits quoted in §5.1.
pub fn ideal(kind: ProtocolKind, sys: &SystemParams, p: f64) -> f64 {
    let (s, pc, n) = (sys.s as f64, sys.p as f64, sys.n_clients as f64);
    match kind {
        ProtocolKind::WriteThrough => p * ((1.0 - p) * (s + 2.0) + pc + n),
        ProtocolKind::WriteThroughV => p * (pc + n + 2.0),
        ProtocolKind::WriteOnce
        | ProtocolKind::Synapse
        | ProtocolKind::Illinois
        | ProtocolKind::Berkeley => 0.0,
        ProtocolKind::Dragon => dragon(sys, p),
        ProtocolKind::Firefly => firefly(sys, p),
        // Quorum rounds are state-independent, so the ideal workload
        // buys nothing: even σ = 0 reads pay the full majority round.
        ProtocolKind::Quorum => quorum(sys, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{analyze, AnalyzeOpts};
    use repmem_core::Scenario;
    use repmem_protocols::protocol;

    fn engine_rd(kind: ProtocolKind, sys: &SystemParams, p: f64, sigma: f64, a: usize) -> f64 {
        let scenario = Scenario::read_disturbance(p, sigma, a).unwrap();
        analyze(protocol(kind), sys, &scenario, AnalyzeOpts::default())
            .unwrap()
            .acc
    }

    #[test]
    fn all_rd_forms_match_engine_at_spot_points() {
        let sys = SystemParams::new(7, 120, 25);
        for kind in ProtocolKind::EVERY {
            for (p, sigma, a) in [
                (0.3, 0.06, 3),
                (0.1, 0.02, 5),
                (0.55, 0.1, 2),
                (0.8, 0.04, 1),
            ] {
                let closed = closed_rd(kind, &sys, p, sigma, a);
                let engine = engine_rd(kind, &sys, p, sigma, a);
                assert!(
                    (closed - engine).abs() < 1e-7,
                    "{kind:?} at (p={p}, σ={sigma}, a={a}): closed {closed} vs engine {engine}"
                );
            }
        }
    }

    #[test]
    fn wd_forms_match_engine() {
        let sys = SystemParams::new(6, 90, 15);
        for (p, xi, a) in [(0.2, 0.05, 3), (0.4, 0.1, 2), (0.05, 0.02, 4)] {
            let scenario = Scenario::write_disturbance(p, xi, a).unwrap();
            for kind in ProtocolKind::EVERY {
                if let Some(closed) = closed_wd(kind, &sys, p, xi, a) {
                    let engine = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default())
                        .unwrap()
                        .acc;
                    assert!(
                        (closed - engine).abs() < 1e-7,
                        "{kind:?} WD (p={p}, ξ={xi}, a={a}): closed {closed} vs engine {engine}"
                    );
                }
            }
        }
    }

    #[test]
    fn mc_forms_match_engine() {
        let sys = SystemParams::new(6, 90, 15);
        for (p, beta) in [(0.3, 2), (0.5, 4), (0.15, 3)] {
            let scenario = Scenario::multiple_centers(p, beta).unwrap();
            for kind in ProtocolKind::EVERY {
                if let Some(closed) = closed_mc(kind, &sys, p, beta) {
                    let engine = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default())
                        .unwrap()
                        .acc;
                    assert!(
                        (closed - engine).abs() < 1e-7,
                        "{kind:?} MC (p={p}, β={beta}): closed {closed} vs engine {engine}"
                    );
                }
            }
        }
    }

    #[test]
    fn rd_reduces_to_ideal_at_sigma_zero() {
        let sys = SystemParams::new(9, 300, 30);
        for kind in ProtocolKind::EVERY {
            for p in [0.1, 0.5, 0.9] {
                let rd0 = closed_rd(kind, &sys, p, 0.0, 4);
                let id = ideal(kind, &sys, p);
                assert!(
                    (rd0 - id).abs() < 1e-10,
                    "{kind:?}: σ=0 gives {rd0}, ideal {id}"
                );
            }
        }
    }

    #[test]
    fn zero_write_prob_is_free_everywhere() {
        // A sequencer-family property: quorum reads still pay a full
        // majority round at p = 0, which is exactly the premium the
        // crossover analysis prices against availability.
        let sys = SystemParams::figure5();
        for kind in ProtocolKind::ALL {
            assert_eq!(closed_rd(kind, &sys, 0.0, 0.05, 10), 0.0, "{kind:?}");
        }
        assert!(closed_rd(ProtocolKind::Quorum, &sys, 0.0, 0.05, 10) > 0.0);
    }

    #[test]
    fn quorum_form_is_state_independent() {
        // Same acc whatever the disturbance split, as long as the total
        // write probability agrees.
        let sys = SystemParams::new(7, 120, 25);
        let w = 0.3;
        let base = quorum(&sys, w);
        for (sigma, a) in [(0.0, 1), (0.05, 2), (0.1, 4)] {
            assert!((closed_rd(ProtocolKind::Quorum, &sys, w, sigma, a) - base).abs() < 1e-12);
        }
        let n = sys.n_clients as f64;
        let (s, p) = (sys.s as f64, sys.p as f64);
        assert_eq!(quorum(&sys, 1.0), n * (s + p + 4.0));
        assert_eq!(quorum(&sys, 0.0), n * (2.0 * s + 4.0));
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::chain::{analyze, AnalyzeOpts};
    use rand::{Rng, SeedableRng};
    use repmem_core::Scenario;
    use repmem_protocols::protocol;

    /// Deterministic replacement for the former property test: 24 seeded
    /// random read-disturbance configurations, closed form vs chain engine
    /// for all eight protocols.
    #[test]
    fn closed_rd_equals_engine() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC105ED);
        let mut checked = 0usize;
        while checked < 24 {
            let p = 0.01 + 0.69 * rng.random::<f64>();
            let sigma = 0.001 + 0.079 * rng.random::<f64>();
            let a = rng.random_range(1usize..4);
            let n = rng.random_range(3usize..8);
            // The paper requires a < N (the activity center plus the a
            // disturbing processes are all *clients*) and a feasible
            // probability budget.
            if p + a as f64 * sigma >= 0.99 || a + 1 > n {
                continue;
            }
            checked += 1;
            let sys = SystemParams::new(n, 64, 12);
            let scenario = Scenario::read_disturbance(p, sigma, a).unwrap();
            for kind in repmem_core::ProtocolKind::EVERY {
                let closed = closed_rd(kind, &sys, p, sigma, a);
                let engine = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default())
                    .unwrap()
                    .acc;
                assert!(
                    (closed - engine).abs() < 1e-6 * (1.0 + engine.abs()),
                    "{kind:?} (p={p}, σ={sigma}, a={a}, N={n}): closed {closed} vs engine {engine}"
                );
            }
        }
    }
}
