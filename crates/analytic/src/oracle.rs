//! The synchronous oracle: executes one shared-memory operation atomically
//! over the real protocol machines.
//!
//! The paper's analysis (§4.2–4.3) treats the global operation sequence as
//! repeated independent trials — each operation runs to completion in the
//! globally sequenced order before the next begins. The oracle realizes
//! exactly that semantics: it drives the initiating Mealy machine and then
//! delivers every message it (transitively) produces, FIFO, until the
//! system is quiescent, summing inter-node message costs along the way.
//! The resulting `(trace, cost)` pair is precisely one of the paper's
//! traces `tr_h` with its trace communication cost `cc_h`.

use repmem_core::{
    Actions, CoherenceProtocol, CopyState, Dest, Msg, MsgKind, NodeId, ObjectId, OpKind, OpTag,
    PayloadKind, QueueKind, Role, SystemParams, TraceSig,
};
use std::collections::VecDeque;

/// The global copy-state of one shared object across all `N+1` nodes.
///
/// The oracle keeps a *single* owner register: under serialized execution
/// every node's ownership belief is identical after each operation, so
/// the per-node registers of a real deployment collapse to one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Global {
    /// Copy state at each node (index = node id; last = home sequencer).
    pub states: Vec<CopyState>,
    /// The consensus owner register.
    pub owner: NodeId,
}

impl Global {
    /// The initial configuration: every client in the protocol's client
    /// start state, the home sequencer in its sequencer start state,
    /// ownership at home.
    pub fn initial(protocol: &dyn CoherenceProtocol, sys: &SystemParams) -> Self {
        let mut states = vec![protocol.initial_state(Role::Client); sys.n_nodes()];
        states[sys.home().idx()] = protocol.initial_state(Role::Sequencer);
        Global {
            states,
            owner: sys.home(),
        }
    }
}

/// What one atomic operation execution did.
#[derive(Debug, Clone)]
pub struct OpOutcome {
    /// Trace signature: initiator, operation kind, total cost.
    pub sig: TraceSig,
    /// Total communication cost (`cc_h` for this trace).
    pub cost: u64,
    /// Kinds of the inter-node messages, in send order.
    pub kinds: Vec<MsgKind>,
    /// Number of `return`s performed (reads must return exactly once).
    pub rets: u32,
    /// Number of local-copy mutations (`change`) performed system-wide.
    pub changes: u32,
}

struct OracleHost<'a> {
    me: NodeId,
    sys: &'a SystemParams,
    owner: &'a mut NodeId,
    queue: &'a mut VecDeque<(NodeId, Msg)>,
    current: Msg,
    op_node: NodeId,
    op_kind: OpKind,
    cost: &'a mut u64,
    kinds: &'a mut Vec<MsgKind>,
    rets: &'a mut u32,
    changes: &'a mut u32,
    // Quorum vote counter, shared across the cascade (the host is
    // rebuilt per delivered message; one counter pair suffices because
    // the oracle runs one operation — hence one round — at a time).
    votes: &'a mut usize,
    need: &'a mut usize,
}

impl Actions for OracleHost<'_> {
    fn me(&self) -> NodeId {
        self.me
    }
    fn home(&self) -> NodeId {
        self.sys.home()
    }
    fn n_nodes(&self) -> usize {
        self.sys.n_nodes()
    }
    fn owner(&self) -> NodeId {
        *self.owner
    }
    fn set_owner(&mut self, owner: NodeId) {
        *self.owner = owner;
    }
    fn push(&mut self, dest: Dest, kind: MsgKind, payload: PayloadKind) {
        let receivers: Vec<NodeId> = match dest {
            Dest::To(n) => vec![n],
            Dest::AllExcept(a, b) => (0..self.sys.n_nodes() as u16)
                .map(NodeId)
                .filter(|&n| n != a && Some(n) != b)
                .collect(),
        };
        for r in receivers {
            if r != self.me {
                *self.cost += self.sys.msg_cost(payload);
                self.kinds.push(kind);
            }
            let msg = Msg {
                kind,
                initiator: self.current.initiator,
                sender: self.me,
                object: self.current.object,
                queue: QueueKind::Distributed,
                payload,
                op: self.current.op,
                epoch: 0,
            };
            self.queue.push_back((r, msg));
        }
    }
    fn change(&mut self) {
        *self.changes += 1;
    }
    fn install(&mut self) {}
    fn ret(&mut self) {
        *self.rets += 1;
    }
    fn disable_local(&mut self) {}
    fn enable_local(&mut self) {}
    fn pending_op(&self) -> Option<OpKind> {
        if self.me == self.op_node {
            Some(self.op_kind)
        } else {
            None
        }
    }
    fn quorum_arm(&mut self, need: usize) {
        *self.need = need;
        *self.votes = 0;
    }
    fn quorum_vote(&mut self) -> bool {
        *self.votes += 1;
        *self.votes == *self.need
    }
}

/// Execute one operation atomically, mutating `g` to the successor global
/// state and returning the trace outcome.
///
/// # Panics
///
/// Panics if the message cascade does not quiesce within a generous bound
/// (a protocol livelock would be an implementation bug) or if a machine
/// hits one of its *error* entries.
pub fn execute(
    protocol: &dyn CoherenceProtocol,
    sys: &SystemParams,
    g: &mut Global,
    node: NodeId,
    op: OpKind,
) -> OpOutcome {
    let obj = ObjectId(0);
    let req_kind = match op {
        OpKind::Read => MsgKind::RReq,
        OpKind::Write => MsgKind::WReq,
    };
    let mut queue: VecDeque<(NodeId, Msg)> = VecDeque::new();
    queue.push_back((
        node,
        Msg::app_request(req_kind, node, node == sys.home(), obj, OpTag(0)),
    ));

    let mut cost = 0u64;
    let mut kinds = Vec::new();
    let mut rets = 0u32;
    let mut changes = 0u32;
    let (mut votes, mut need) = (0usize, 0usize);
    let budget = 64 * sys.n_nodes() + 256;
    let mut steps = 0usize;

    while let Some((dst, msg)) = queue.pop_front() {
        steps += 1;
        assert!(
            steps <= budget,
            "{}: operation did not quiesce within {budget} steps ({op:?} at {node})",
            protocol.kind().name()
        );
        let state = g.states[dst.idx()];
        let mut host = OracleHost {
            me: dst,
            sys,
            owner: &mut g.owner,
            queue: &mut queue,
            current: msg,
            op_node: node,
            op_kind: op,
            cost: &mut cost,
            kinds: &mut kinds,
            rets: &mut rets,
            changes: &mut changes,
            votes: &mut votes,
            need: &mut need,
        };
        let next = protocol.step(&mut host, state, &msg);
        g.states[dst.idx()] = next;
    }

    OpOutcome {
        sig: TraceSig {
            initiator: node,
            op,
            cost,
        },
        cost,
        kinds,
        rets,
        changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repmem_core::ProtocolKind;
    use repmem_protocols::protocol;

    fn sys() -> SystemParams {
        SystemParams::new(3, 100, 30) // N=3, S=100, P=30 (Table 7 shape)
    }

    /// Drive the Write-Through traces of paper §4.1 end to end.
    #[test]
    fn write_through_trace_set_matches_paper() {
        let sys = sys();
        let wt = protocol(ProtocolKind::WriteThrough);
        let mut g = Global::initial(wt, &sys);
        let ac = NodeId(0);

        // tr2: first read misses, cost S+2.
        let o = execute(wt, &sys, &mut g, ac, OpKind::Read);
        assert_eq!(o.cost, sys.s + 2);
        assert_eq!(o.rets, 1);

        // tr1: second read hits, cost 0.
        let o = execute(wt, &sys, &mut g, ac, OpKind::Read);
        assert_eq!(o.cost, 0);
        assert_eq!(o.rets, 1);

        // tr3: write from VALID, cost P+N.
        let o = execute(wt, &sys, &mut g, ac, OpKind::Write);
        assert_eq!(o.cost, sys.p + sys.n_clients as u64);

        // tr4: write from INVALID (own copy was just invalidated), same.
        let o = execute(wt, &sys, &mut g, ac, OpKind::Write);
        assert_eq!(o.cost, sys.p + sys.n_clients as u64);

        // tr5/tr6: sequencer read free, write costs N.
        let o = execute(wt, &sys, &mut g, sys.home(), OpKind::Read);
        assert_eq!(o.cost, 0);
        let o = execute(wt, &sys, &mut g, sys.home(), OpKind::Write);
        assert_eq!(o.cost, sys.n_clients as u64);
    }

    #[test]
    fn write_through_v_write_costs_p_plus_n_plus_2() {
        let sys = sys();
        let p = protocol(ProtocolKind::WriteThroughV);
        let mut g = Global::initial(p, &sys);
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, sys.p + sys.n_clients as u64 + 2);
        // The writer's copy stays valid: an immediate read is free.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Read);
        assert_eq!(o.cost, 0);
    }

    #[test]
    fn synapse_costs() {
        let sys = sys();
        let p = protocol(ProtocolKind::Synapse);
        let (n, s) = (sys.n_clients as u64, sys.s);
        let mut g = Global::initial(p, &sys);

        // Acquire: S+N+1, then free writes.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, s + n + 1);
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, 0);

        // Remote read of the dirty block: broadcast recall, 2S+N+3.
        let o = execute(p, &sys, &mut g, NodeId(1), OpKind::Read);
        assert_eq!(o.cost, 2 * s + n + 2);
        assert_eq!(o.rets, 1);

        // Synapse invalidated the old owner: its next read misses (S+2).
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Read);
        assert_eq!(o.cost, s + 2);
    }

    #[test]
    fn illinois_costs() {
        let sys = sys();
        let p = protocol(ProtocolKind::Illinois);
        let (n, s) = (sys.n_clients as u64, sys.s);
        let mut g = Global::initial(p, &sys);

        // Acquire from INVALID: S+N+1.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, s + n + 1);

        // Remote read of dirty: targeted recall, 2S+4.
        let o = execute(p, &sys, &mut g, NodeId(1), OpKind::Read);
        assert_eq!(o.cost, 2 * s + 4);

        // Old owner kept a VALID copy: its read is free, and its next
        // write is a cheap upgrade (N+1).
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Read);
        assert_eq!(o.cost, 0);
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, n + 1);
    }

    #[test]
    fn berkeley_activity_center_becomes_sequencer() {
        let sys = sys();
        let p = protocol(ProtocolKind::Berkeley);
        let (n, s) = (sys.n_clients as u64, sys.s);
        let mut g = Global::initial(p, &sys);

        // First write: acquisition from the home owner, S+N+1.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, s + n + 1);
        assert_eq!(g.owner, NodeId(0));

        // Subsequent writes free.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, 0);

        // Disturbing read served by the owner for S+2.
        let o = execute(p, &sys, &mut g, NodeId(1), OpKind::Read);
        assert_eq!(o.cost, s + 2);

        // Owner now SHARED-DIRTY: next write pays one wave (N).
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, n);
    }

    #[test]
    fn update_protocols_write_costs() {
        let sys = sys();
        let (n, pp) = (sys.n_clients as u64, sys.p);
        let d = protocol(ProtocolKind::Dragon);
        let mut g = Global::initial(d, &sys);
        let o = execute(d, &sys, &mut g, NodeId(1), OpKind::Write);
        assert_eq!(o.cost, n * (pp + 1));
        let o = execute(d, &sys, &mut g, NodeId(2), OpKind::Read);
        assert_eq!(o.cost, 0);

        let f = protocol(ProtocolKind::Firefly);
        let mut g = Global::initial(f, &sys);
        let o = execute(f, &sys, &mut g, NodeId(1), OpKind::Write);
        assert_eq!(o.cost, n * (pp + 1) + 1);
    }

    #[test]
    fn write_once_escalation() {
        let sys = sys();
        let p = protocol(ProtocolKind::WriteOnce);
        let (n, s, pp) = (sys.n_clients as u64, sys.s, sys.p);
        let mut g = Global::initial(p, &sys);

        // Populate the writer's copy first.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Read);
        assert_eq!(o.cost, s + 2);
        // First write: write-through, P+N.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, pp + n);
        // Second write: one token.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, 1);
        // Third write: free.
        let o = execute(p, &sys, &mut g, NodeId(0), OpKind::Write);
        assert_eq!(o.cost, 0);
        // Remote read of the dirty copy: targeted recall, 2S+4.
        let o = execute(p, &sys, &mut g, NodeId(1), OpKind::Read);
        assert_eq!(o.cost, 2 * s + 4);
    }

    #[test]
    fn quorum_rounds_are_state_independent() {
        let sys = sys();
        let p = protocol(ProtocolKind::Quorum);
        let (n, s, pp) = (sys.n_clients as u64, sys.s, sys.p);
        let mut g = Global::initial(p, &sys);

        // Every read pays a full round — N(2S+4) — hit or not.
        for node in [NodeId(0), NodeId(0), NodeId(2), sys.home()] {
            let o = execute(p, &sys, &mut g, node, OpKind::Read);
            assert_eq!(o.cost, n * (2 * s + 4));
            assert_eq!(o.rets, 1);
        }
        // Every write pays N(S+P+4) and lands on every replica (the
        // initiator's change plus N commit applications).
        for node in [NodeId(1), NodeId(1), sys.home()] {
            let o = execute(p, &sys, &mut g, node, OpKind::Write);
            assert_eq!(o.cost, n * (s + pp + 4));
            assert_eq!(o.changes, 1 + n as u32);
        }
        // No state ever leaves VALID at quiescence: the chain engine
        // sees a single global state.
        assert_eq!(g, Global::initial(p, &sys));
    }

    #[test]
    fn reads_always_return_exactly_once() {
        for kind in ProtocolKind::EVERY {
            let sys = sys();
            let p = protocol(kind);
            let mut g = Global::initial(p, &sys);
            for node in [NodeId(0), NodeId(1), sys.home()] {
                for _ in 0..3 {
                    let o = execute(p, &sys, &mut g, node, OpKind::Read);
                    assert_eq!(o.rets, 1, "{kind:?} read at {node}");
                    let o = execute(p, &sys, &mut g, node, OpKind::Write);
                    assert_eq!(o.rets, 0, "{kind:?} write at {node}");
                }
            }
        }
    }

    #[test]
    fn every_write_reaches_the_authoritative_copy() {
        // In serialized execution every protocol propagates a write to at
        // least one copy (change >= 1).
        for kind in ProtocolKind::EVERY {
            let sys = sys();
            let p = protocol(kind);
            let mut g = Global::initial(p, &sys);
            for i in 0..6u16 {
                let node = NodeId(i % sys.n_nodes() as u16);
                let o = execute(p, &sys, &mut g, node, OpKind::Write);
                assert!(o.changes >= 1, "{kind:?}: write applied nowhere");
            }
        }
    }
}
