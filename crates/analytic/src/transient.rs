//! Transient (burn-in) analysis.
//!
//! The paper's simulation discards the first 500 operations "to eliminate
//! the influence of the transient period" (§5.2). The chain model makes
//! that choice analyzable: starting from the deterministic initial
//! configuration (all client copies INVALID, ownership at home), iterate
//! the one-step distribution and watch the *expected per-operation cost*
//! converge to the stationary `acc`. [`burn_in`] returns the number of
//! operations after which the expected cost stays within a relative
//! tolerance of `acc` — for the paper's Table 7 configuration this is far
//! below 500, confirming the warm-up choice was conservative.

use crate::chain::{build, AnalyzeError, AnalyzeOpts, ChainModel};
use repmem_core::{CoherenceProtocol, Scenario, SystemParams};

/// The convergence profile of the expected per-operation cost.
#[derive(Debug, Clone)]
pub struct TransientProfile {
    /// Expected cost of operation `t+1` given the initial state, for
    /// `t = 0..len`.
    pub expected_cost: Vec<f64>,
    /// The stationary average cost the profile converges to.
    pub acc: f64,
    /// First operation index after which the expected cost stays within
    /// the requested tolerance of `acc` (`None` if not reached within the
    /// horizon).
    pub settled_after: Option<usize>,
}

/// Iterate the chain from its initial state for up to `horizon` steps.
pub fn profile(
    protocol: &dyn CoherenceProtocol,
    sys: &SystemParams,
    scenario: &Scenario,
    rel_tol: f64,
    horizon: usize,
) -> Result<TransientProfile, AnalyzeError> {
    let opts = AnalyzeOpts::default();
    let model = build(protocol, sys, scenario, opts)?;
    let acc = model.solve(&opts)?.acc;
    let profile = iterate(&model, horizon);
    let tol = rel_tol * acc.abs().max(1e-9);
    // Find the last index that violates the band; settled after that.
    let mut settled_after = None;
    let last_violation = profile.iter().rposition(|e| (e - acc).abs() > tol);
    match last_violation {
        None => settled_after = Some(0),
        Some(i) if i + 1 < profile.len() => settled_after = Some(i + 1),
        Some(_) => {}
    }
    Ok(TransientProfile {
        expected_cost: profile,
        acc,
        settled_after,
    })
}

/// Convenience: the settling operation count, or `horizon` if the band is
/// never reached.
pub fn burn_in(
    protocol: &dyn CoherenceProtocol,
    sys: &SystemParams,
    scenario: &Scenario,
    rel_tol: f64,
    horizon: usize,
) -> Result<usize, AnalyzeError> {
    Ok(profile(protocol, sys, scenario, rel_tol, horizon)?
        .settled_after
        .unwrap_or(horizon))
}

fn iterate(model: &ChainModel, horizon: usize) -> Vec<f64> {
    let n = model.n_states();
    let mut x = vec![0.0; n];
    x[model.initial] = 1.0;
    let mut y = vec![0.0; n];
    let mut out = Vec::with_capacity(horizon);
    for _ in 0..horizon {
        let e: f64 = x.iter().zip(&model.expected_cost).map(|(p, c)| p * c).sum();
        out.push(e);
        model.matrix.left_mul_into(&x, &mut y);
        std::mem::swap(&mut x, &mut y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use repmem_core::ProtocolKind;
    use repmem_protocols::protocol;

    #[test]
    fn paper_warmup_of_500_ops_is_conservative() {
        // Table 7 configuration: every protocol settles to within 1 % of
        // its stationary cost well before the paper's 500 discarded ops.
        let sys = SystemParams::table7();
        let scenario = Scenario::read_disturbance(0.4, 0.2, 2).unwrap();
        for kind in ProtocolKind::ALL {
            let b = burn_in(protocol(kind), &sys, &scenario, 0.01, 500).unwrap();
            assert!(b < 500, "{kind:?}: burn-in {b} not below the paper's 500");
        }
    }

    #[test]
    fn profile_converges_to_stationary_acc() {
        let sys = SystemParams::new(5, 80, 20);
        let scenario = Scenario::read_disturbance(0.3, 0.06, 3).unwrap();
        let p = profile(
            protocol(ProtocolKind::Synapse),
            &sys,
            &scenario,
            0.001,
            2000,
        )
        .unwrap();
        let last = *p.expected_cost.last().unwrap();
        assert!(
            (last - p.acc).abs() < 1e-3 * p.acc,
            "expected cost {last} did not converge to acc {}",
            p.acc
        );
        assert!(p.settled_after.is_some());
    }

    #[test]
    fn first_operation_reflects_the_cold_start() {
        // From the all-INVALID start, a Write-Through client's first
        // operation is either a read miss or a write — always remote, so
        // the first expected cost exceeds the stationary one.
        let sys = SystemParams::new(5, 200, 10);
        let scenario = Scenario::read_disturbance(0.1, 0.02, 2).unwrap();
        let p = profile(
            protocol(ProtocolKind::WriteThrough),
            &sys,
            &scenario,
            0.01,
            200,
        )
        .unwrap();
        assert!(
            p.expected_cost[0] > p.acc,
            "cold start {} vs acc {}",
            p.expected_cost[0],
            p.acc
        );
    }

    #[test]
    fn slow_disturbance_needs_longer_burn_in() {
        // Rarer disturbing reads mix the chain more slowly.
        let sys = SystemParams::new(4, 50, 10);
        let fast = burn_in(
            protocol(ProtocolKind::Berkeley),
            &sys,
            &Scenario::read_disturbance(0.3, 0.1, 2).unwrap(),
            0.01,
            5000,
        )
        .unwrap();
        let slow = burn_in(
            protocol(ProtocolKind::Berkeley),
            &sys,
            &Scenario::read_disturbance(0.3, 0.002, 2).unwrap(),
            0.01,
            5000,
        )
        .unwrap();
        assert!(slow > fast, "slow {slow} vs fast {fast}");
    }
}
