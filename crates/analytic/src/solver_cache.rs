//! Memoized chain solves for parameter sweeps.
//!
//! The sweep experiments (Figures 5/6, Tables 6/7, the crossover scans)
//! evaluate `analyze` over dense parameter grids where many grid points
//! share the same `(protocol, system, scenario)` triple — e.g. every
//! protocol curve in a crossover scan re-solves the same chain for the
//! shared axis values, and multi-threaded sweeps would otherwise repeat
//! work across workers. [`SolverCache`] memoizes stationary solves behind
//! a mutex so concurrent sweep workers share results.
//!
//! ## Keying
//!
//! A solve is identified by the protocol kind, the full [`SystemParams`],
//! the scenario's actor list with probabilities **quantized to 1e-12**,
//! and a digest of the [`AnalyzeOpts`]. Quantization makes the key
//! `Eq + Hash` despite `f64` probabilities; 1e-12 is far below any
//! physically meaningful workload difference and far above f64 noise in
//! the `1e-14`-tolerance solver, so two scenarios that collide produce
//! results identical to well below the solver tolerance.
//!
//! Only successful solves are cached: errors (state-space blowup, solver
//! divergence) are returned to the caller and retried on the next lookup.
//!
//! Results are handed out as `Arc<ChainResult>` so hits are O(1) — no
//! clone of the trace-probability map.

use crate::chain::{analyze, AnalyzeError, AnalyzeOpts, ChainResult};
use parking_lot::Mutex;
use repmem_core::{CoherenceProtocol, ProtocolKind, Scenario, SystemParams};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Probability quantum for cache keys (see module docs).
const QUANTUM: f64 = 1e-12;

fn quantize(p: f64) -> i64 {
    (p / QUANTUM).round() as i64
}

/// Hashable identity of one `analyze` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    protocol: ProtocolKind,
    n_clients: usize,
    s: u64,
    p: u64,
    m_objects: usize,
    /// `(node, read_prob, write_prob)` per actor, probabilities quantized.
    actors: Vec<(u16, i64, i64)>,
    lump: bool,
    /// Solver tolerance, bit-exact.
    tol_bits: u64,
    max_iter: usize,
    dense_cutoff: usize,
    max_states: usize,
}

impl Key {
    fn new(
        protocol: ProtocolKind,
        sys: &SystemParams,
        scenario: &Scenario,
        opts: &AnalyzeOpts,
    ) -> Key {
        Key {
            protocol,
            n_clients: sys.n_clients,
            s: sys.s,
            p: sys.p,
            m_objects: sys.m_objects,
            actors: scenario
                .actors
                .iter()
                .map(|a| (a.node.0, quantize(a.read_prob), quantize(a.write_prob)))
                .collect(),
            lump: opts.lump,
            tol_bits: opts.stationary.tol.to_bits(),
            max_iter: opts.stationary.max_iter,
            dense_cutoff: opts.dense_cutoff,
            max_states: opts.max_states,
        }
    }
}

/// One key's slot: `None` while the first solve is in flight.
type Slot = Arc<Mutex<Option<Arc<ChainResult>>>>;

/// A thread-safe memo table over [`analyze`].
///
/// Shared by reference (or `Arc`) across sweep workers; see
/// `repmem-bench`'s sweep engine for the main consumer.
#[derive(Default)]
pub struct SolverCache {
    map: Mutex<HashMap<Key, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolverCache {
    /// An empty cache.
    pub fn new() -> SolverCache {
        SolverCache::default()
    }

    /// Memoized [`analyze`]: returns the cached stationary solve for this
    /// `(protocol, system, scenario, opts)` if present, otherwise solves
    /// and caches.
    ///
    /// Each key has its own slot lock, so a slow solve never blocks hits
    /// on other keys, and workers racing on the same fresh key block on
    /// the slot instead of solving it redundantly — every distinct key is
    /// solved (and counted as a miss) exactly once.
    pub fn analyze(
        &self,
        protocol: &dyn CoherenceProtocol,
        sys: &SystemParams,
        scenario: &Scenario,
        opts: AnalyzeOpts,
    ) -> Result<Arc<ChainResult>, AnalyzeError> {
        let key = Key::new(protocol.kind(), sys, scenario, &opts);
        // The map lock is released before the slot lock is taken, so no
        // thread ever holds both (the error path below relies on that).
        let slot: Slot = Arc::clone(self.map.lock().entry(key.clone()).or_default());
        let mut guard = slot.lock();
        if let Some(hit) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        match analyze(protocol, sys, scenario, opts) {
            Ok(result) => {
                let result = Arc::new(result);
                *guard = Some(Arc::clone(&result));
                Ok(result)
            }
            Err(e) => {
                // Drop the placeholder so the next lookup retries instead
                // of finding a permanently empty slot.
                self.map.lock().remove(&key);
                Err(e)
            }
        }
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to solve.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Number of distinct keys currently stored (including in-flight
    /// solves).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// `true` when no solve has been stored or started yet.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repmem_protocols::protocol;

    #[test]
    fn hit_returns_identical_result() {
        let cache = SolverCache::new();
        let sys = SystemParams::new(4, 100, 30);
        let sc = Scenario::read_disturbance(0.3, 0.05, 2).unwrap();
        let proto = protocol(ProtocolKind::Berkeley);
        let a = cache
            .analyze(proto, &sys, &sc, AnalyzeOpts::default())
            .unwrap();
        let b = cache
            .analyze(proto, &sys, &sc, AnalyzeOpts::default())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memoized_matches_fresh_solve() {
        let cache = SolverCache::new();
        let sys = SystemParams::new(5, 80, 20);
        let sc = Scenario::write_disturbance(0.2, 0.04, 2).unwrap();
        for kind in ProtocolKind::ALL {
            let proto = protocol(kind);
            let cached = cache
                .analyze(proto, &sys, &sc, AnalyzeOpts::default())
                .unwrap();
            let fresh = analyze(proto, &sys, &sc, AnalyzeOpts::default()).unwrap();
            assert!(
                (cached.acc - fresh.acc).abs() < 1e-12,
                "{kind:?}: cached {} vs fresh {}",
                cached.acc,
                fresh.acc
            );
        }
    }

    #[test]
    fn distinct_scenarios_do_not_collide() {
        let cache = SolverCache::new();
        let sys = SystemParams::new(4, 100, 30);
        let proto = protocol(ProtocolKind::WriteThrough);
        let a = Scenario::ideal(0.3).unwrap();
        let b = Scenario::ideal(0.3 + 1e-6).unwrap();
        let ra = cache
            .analyze(proto, &sys, &a, AnalyzeOpts::default())
            .unwrap();
        let rb = cache
            .analyze(proto, &sys, &b, AnalyzeOpts::default())
            .unwrap();
        assert_eq!(cache.misses(), 2);
        assert!((ra.acc - rb.acc).abs() > 0.0);
    }

    #[test]
    fn protocol_kind_distinguishes_entries() {
        let cache = SolverCache::new();
        let sys = SystemParams::new(4, 100, 30);
        let sc = Scenario::ideal(0.4).unwrap();
        cache
            .analyze(
                protocol(ProtocolKind::WriteThrough),
                &sys,
                &sc,
                AnalyzeOpts::default(),
            )
            .unwrap();
        cache
            .analyze(
                protocol(ProtocolKind::Dragon),
                &sys,
                &sc,
                AnalyzeOpts::default(),
            )
            .unwrap();
        assert_eq!(cache.len(), 2);
    }
}
