//! Trace-set enumeration — the paper's §4.1 as a first-class API.
//!
//! For a given coherence protocol, the set `TR` of operation traces is
//! finite: every operation execution results in exactly one trace, which
//! depends on the operation type, the copy states, and (in the serialized
//! semantics) nothing else. This module enumerates `TR` exhaustively by
//! running the oracle from every reachable global state, recording for
//! each trace its **message-kind sequence** (the paper's Figures 2–4) and
//! its **communication cost** `cc_h`.

use crate::chain::{analyze, AnalyzeOpts};
use crate::oracle::{execute, Global};
use repmem_core::{CoherenceProtocol, MsgKind, NodeId, OpKind, Scenario, SystemParams};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// One element of the trace set `TR`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceInfo {
    /// Operation type that produces this trace.
    pub op: OpKind,
    /// Whether the initiator is the (home) sequencer.
    pub sequencer_initiated: bool,
    /// Inter-node message kinds, in send order.
    pub messages: Vec<MsgKind>,
    /// The trace communication cost `cc_h`.
    pub cost: u64,
}

impl TraceInfo {
    /// Human-readable rendering, e.g. `client write: W-PER, W-INV×4 (cc=34)`.
    pub fn describe(&self) -> String {
        let who = if self.sequencer_initiated {
            "sequencer"
        } else {
            "client"
        };
        if self.messages.is_empty() {
            return format!("{who} {}: local (cc=0)", self.op);
        }
        // Run-length encode repeated kinds for readability.
        let mut parts: Vec<String> = Vec::new();
        let mut iter = self.messages.iter().peekable();
        while let Some(kind) = iter.next() {
            let mut n = 1;
            while iter.peek() == Some(&kind) {
                iter.next();
                n += 1;
            }
            if n == 1 {
                parts.push(kind.mnemonic().to_string());
            } else {
                parts.push(format!("{}×{n}", kind.mnemonic()));
            }
        }
        format!("{who} {}: {} (cc={})", self.op, parts.join(", "), self.cost)
    }
}

/// Enumerate the full trace set of a protocol by exhaustive exploration
/// of the reachable global copy-states under a maximally-exercising
/// workload (reads and writes at two distinct clients plus the
/// sequencer).
///
/// The result is returned sorted and deduplicated; the paper's claim that
/// `TR` is finite is witnessed by termination of the closed reachable-set
/// walk.
pub fn trace_set(protocol: &dyn CoherenceProtocol, sys: &SystemParams) -> Vec<TraceInfo> {
    assert!(
        sys.n_clients >= 2,
        "need two clients to exercise remote traces"
    );
    let actors: Vec<NodeId> = vec![NodeId(0), NodeId(1), sys.home()];
    let ops = [OpKind::Read, OpKind::Write];

    let mut seen_states: HashSet<Global> = HashSet::new();
    let mut frontier: VecDeque<Global> = VecDeque::new();
    let g0 = Global::initial(protocol, sys);
    seen_states.insert(g0.clone());
    frontier.push_back(g0);

    let mut traces: BTreeSet<TraceInfo> = BTreeSet::new();
    while let Some(state) = frontier.pop_front() {
        for &node in &actors {
            for op in ops {
                let mut g = state.clone();
                let outcome = execute(protocol, sys, &mut g, node, op);
                traces.insert(TraceInfo {
                    op,
                    sequencer_initiated: node == sys.home(),
                    messages: outcome.kinds,
                    cost: outcome.cost,
                });
                if seen_states.insert(g.clone()) {
                    frontier.push_back(g);
                }
            }
        }
    }
    traces.into_iter().collect()
}

/// The steady-state probability of each trace under a scenario, computed
/// from the chain engine and keyed by [`TraceInfo`]-compatible
/// `(sequencer_initiated, op, cost)` classes (the engine's per-node
/// signatures are aggregated per class).
pub fn trace_distribution(
    protocol: &dyn CoherenceProtocol,
    sys: &SystemParams,
    scenario: &Scenario,
) -> BTreeMap<(bool, OpKind, u64), f64> {
    let result = analyze(protocol, sys, scenario, AnalyzeOpts::default())
        .expect("chain analysis for trace distribution");
    let mut out: BTreeMap<(bool, OpKind, u64), f64> = BTreeMap::new();
    for (sig, prob) in result.trace_probs {
        *out.entry((sig.initiator == sys.home(), sig.op, sig.cost))
            .or_insert(0.0) += prob;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use repmem_core::ProtocolKind;
    use repmem_protocols::protocol;

    fn sys() -> SystemParams {
        SystemParams::new(4, 100, 30)
    }

    /// Paper §4.1 + Figures 2–4: the Write-Through trace set. The paper
    /// lists six traces tr1..tr6; tr3 (write from VALID) and tr4 (write
    /// from INVALID) have identical message sequences and identical cost
    /// `cc3 = cc4 = P+N`, so observationally the set has five distinct
    /// signatures.
    #[test]
    fn write_through_trace_set_is_the_papers_six() {
        let sys = sys();
        let tr = trace_set(protocol(ProtocolKind::WriteThrough), &sys);
        let n = sys.n_clients as u64;
        assert_eq!(tr.len(), 5, "{tr:#?}");

        let find = |op: OpKind, seq: bool, cost: u64| -> &TraceInfo {
            tr.iter()
                .find(|t| t.op == op && t.sequencer_initiated == seq && t.cost == cost)
                .unwrap_or_else(|| panic!("missing trace ({op}, seq={seq}, cc={cost})"))
        };

        // tr1: local read hit.
        assert!(find(OpKind::Read, false, 0).messages.is_empty());
        // tr2 (Fig. 2): R-PER to the sequencer, R-GNT back.
        assert_eq!(
            find(OpKind::Read, false, sys.s + 2).messages,
            vec![MsgKind::RPer, MsgKind::RGnt]
        );
        // tr3/tr4 (Fig. 3): W-PER with parameters + N-1 invalidations.
        let w = find(OpKind::Write, false, sys.p + n);
        assert_eq!(w.messages[0], MsgKind::WPer);
        assert_eq!(w.messages[1..].len(), sys.n_clients - 1);
        assert!(w.messages[1..].iter().all(|k| *k == MsgKind::WInv));
        // tr5: sequencer read, local.
        assert!(find(OpKind::Read, true, 0).messages.is_empty());
        // tr6 (Fig. 4): N invalidations.
        let w6 = find(OpKind::Write, true, n);
        assert_eq!(w6.messages, vec![MsgKind::WInv; sys.n_clients]);
    }

    #[test]
    fn every_protocol_has_a_finite_trace_set() {
        for kind in ProtocolKind::ALL {
            let tr = trace_set(protocol(kind), &sys());
            assert!(!tr.is_empty());
            assert!(tr.len() <= 24, "{kind:?}: {} traces", tr.len());
            // Local traces exist for every protocol (steady-state hits).
            assert!(tr.iter().any(|t| t.cost == 0), "{kind:?} has no free trace");
        }
    }

    #[test]
    fn update_protocols_have_no_read_traffic() {
        for kind in [ProtocolKind::Dragon, ProtocolKind::Firefly] {
            let tr = trace_set(protocol(kind), &sys());
            for t in &tr {
                if t.op == OpKind::Read {
                    assert_eq!(t.cost, 0, "{kind:?}: {}", t.describe());
                }
            }
        }
    }

    #[test]
    fn synapse_broadcast_recall_is_visible_in_the_trace() {
        let sys = sys();
        let tr = trace_set(protocol(ProtocolKind::Synapse), &sys);
        let dirty_read = tr
            .iter()
            .find(|t| t.op == OpKind::Read && t.cost == 2 * sys.s + sys.n_clients as u64 + 2)
            .expect("dirty-read trace");
        let recalls = dirty_read
            .messages
            .iter()
            .filter(|k| **k == MsgKind::Recall)
            .count();
        assert_eq!(recalls, sys.n_clients - 1, "broadcast recall fan-out");
    }

    #[test]
    fn illinois_recall_is_targeted() {
        let sys = sys();
        let tr = trace_set(protocol(ProtocolKind::Illinois), &sys);
        let dirty_read = tr
            .iter()
            .find(|t| t.op == OpKind::Read && !t.sequencer_initiated && t.cost == 2 * sys.s + 4)
            .expect("dirty-read trace");
        let recalls = dirty_read
            .messages
            .iter()
            .filter(|k| **k == MsgKind::Recall)
            .count();
        assert_eq!(recalls, 1, "targeted recall");
    }

    #[test]
    fn distribution_sums_to_one_per_scenario() {
        let sys = sys();
        let scenario = Scenario::read_disturbance(0.3, 0.05, 2).unwrap();
        for kind in ProtocolKind::ALL {
            let dist = trace_distribution(protocol(kind), &sys, &scenario);
            let total: f64 = dist.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "{kind:?}: {total}");
            // No sequencer-initiated traces in a client-only scenario.
            assert!(dist.keys().all(|(seq, _, _)| !seq), "{kind:?}");
        }
    }

    #[test]
    fn describe_renders_run_lengths() {
        let t = TraceInfo {
            op: OpKind::Write,
            sequencer_initiated: false,
            messages: vec![MsgKind::WPer, MsgKind::WInv, MsgKind::WInv, MsgKind::WInv],
            cost: 33,
        };
        assert_eq!(t.describe(), "client write: W-PER, W-INV×3 (cc=33)");
        let free = TraceInfo {
            op: OpKind::Read,
            sequencer_initiated: true,
            messages: vec![],
            cost: 0,
        };
        assert_eq!(free.describe(), "sequencer read: local (cc=0)");
    }
}
