//! Protocol safety invariants, checked on random operation walks through
//! the synchronous oracle: after *every* atomically-executed operation
//! the global copy-state must satisfy the protocol family's structural
//! invariants (single-writer exclusivity, sequencer/owner agreement,
//! no transient states at quiescence).

use rand::{Rng, SeedableRng};
use repmem_analytic::oracle::{execute, Global};
use repmem_core::{CopyState, NodeId, OpKind, ProtocolKind, SystemParams};
use repmem_protocols::protocol;

fn invariants(kind: ProtocolKind, sys: &SystemParams, g: &Global) -> Result<(), String> {
    use CopyState::*;
    let home = sys.home();
    let seq_state = g.states[home.idx()];
    let client_states: Vec<CopyState> = sys.clients().map(|c| g.states[c.idx()]).collect();
    let err = |msg: String| {
        Err(format!(
            "{kind:?}: {msg} (states {:?}, owner {})",
            g.states, g.owner
        ))
    };

    // Quiescence: the transient RECALLING state never survives an
    // atomic operation.
    if g.states.contains(&Recalling) {
        return err("RECALLING state at quiescence".into());
    }

    let dirtyish = |s: &CopyState| matches!(s, Dirty | SharedDirty);
    let n_dirty = g.states.iter().filter(|s| dirtyish(s)).count();

    match kind {
        ProtocolKind::WriteThrough | ProtocolKind::WriteThroughV => {
            // Fixed sequencer always VALID; clients VALID/INVALID only.
            if seq_state != Valid {
                return err(format!("sequencer must stay VALID, is {seq_state:?}"));
            }
            if client_states.iter().any(|s| !matches!(s, Valid | Invalid)) {
                return err("client outside {VALID, INVALID}".into());
            }
        }
        ProtocolKind::WriteOnce => {
            // At most one copy beyond plain VALID; a RESERVED/DIRTY copy
            // is exclusive among clients; sequencer INVALID ⟺ a DIRTY
            // client exists.
            let exclusive: Vec<&CopyState> = client_states
                .iter()
                .filter(|s| matches!(s, Reserved | Dirty))
                .collect();
            if exclusive.len() > 1 {
                return err("two RESERVED/DIRTY copies".into());
            }
            if exclusive.iter().any(|s| matches!(s, Reserved | Dirty))
                && client_states.iter().filter(|s| matches!(s, Valid)).count() > 0
            {
                return err("VALID sharer next to an exclusive copy".into());
            }
            let has_dirty = client_states.iter().any(|s| matches!(s, Dirty));
            if has_dirty != (seq_state == Invalid) {
                return err(format!(
                    "sequencer {seq_state:?} inconsistent with dirty={has_dirty}"
                ));
            }
        }
        ProtocolKind::Synapse | ProtocolKind::Illinois => {
            let dirty = client_states.iter().filter(|s| matches!(s, Dirty)).count();
            if dirty > 1 {
                return err("two DIRTY copies".into());
            }
            if (dirty == 1) != (seq_state == Invalid) {
                return err(format!(
                    "sequencer {seq_state:?} inconsistent with dirty={dirty}"
                ));
            }
            if dirty == 1 && client_states.iter().any(|s| matches!(s, Valid)) {
                return err("VALID sharer while a DIRTY copy exists".into());
            }
        }
        ProtocolKind::Berkeley => {
            // Exactly one owner copy (DIRTY or SHARED-DIRTY), at the node
            // the owner register names; DIRTY means exclusive.
            if n_dirty != 1 {
                return err(format!("{n_dirty} owner copies"));
            }
            if !dirtyish(&g.states[g.owner.idx()]) {
                return err("owner register points at a non-owner copy".into());
            }
            if g.states[g.owner.idx()] == Dirty
                && g.states
                    .iter()
                    .enumerate()
                    .any(|(i, s)| NodeId(i as u16) != g.owner && matches!(s, Valid))
            {
                return err("VALID copy while the owner is exclusive DIRTY".into());
            }
        }
        ProtocolKind::Dragon => {
            // One-state-per-role, always readable.
            if seq_state != SharedDirty {
                return err(format!("sequencer must be SHARED-DIRTY, is {seq_state:?}"));
            }
            if client_states.iter().any(|s| *s != SharedClean) {
                return err("client must be SHARED-CLEAN".into());
            }
        }
        ProtocolKind::Firefly => {
            if g.states.iter().any(|s| *s != Valid) {
                return err("all Firefly copies must stay VALID".into());
            }
        }
        ProtocolKind::Quorum => {
            // Sequencer-free: no QUERYING/COMMITTING phase survives an
            // atomic operation, every replica back to VALID.
            if g.states.iter().any(|s| *s != Valid) {
                return err("all Quorum copies must be VALID at quiescence".into());
            }
        }
    }
    Ok(())
}

/// Deterministic replacement for the former property test: 64 seeded
/// random operation walks per protocol, invariants checked after every
/// atomically-executed operation.
#[test]
fn random_walks_preserve_invariants() {
    for seed in 0u64..64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1A7A ^ (seed << 16));
        let n_clients = rng.random_range(2usize..7);
        let walk_len = rng.random_range(1usize..120);
        let walk: Vec<(u16, bool)> = (0..walk_len)
            .map(|_| (rng.random_range(0u32..7) as u16, rng.random::<bool>()))
            .collect();
        let sys = SystemParams::new(n_clients, 32, 8);
        for kind in ProtocolKind::EVERY {
            let proto = protocol(kind);
            let mut g = Global::initial(proto, &sys);
            assert!(
                invariants(kind, &sys, &g).is_ok(),
                "seed {seed}: initial state invalid"
            );
            for &(node_raw, is_write) in &walk {
                let node = NodeId(node_raw % sys.n_nodes() as u16);
                let op = if is_write {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                execute(proto, &sys, &mut g, node, op);
                if let Err(e) = invariants(kind, &sys, &g) {
                    panic!("seed {seed}: after {op} at {node}: {e}");
                }
            }
        }
    }
}

/// Reads never change the cost-relevant exclusivity structure for the
/// update protocols, and repeated operations at one node reach a
/// zero-cost fixed point for every protocol ("steady state exists").
#[test]
fn repeated_local_operations_become_free() {
    let sys = SystemParams::new(4, 100, 30);
    for kind in ProtocolKind::EVERY {
        let proto = protocol(kind);
        for op in [OpKind::Read, OpKind::Write] {
            let mut g = Global::initial(proto, &sys);
            // Let the node acquire whatever it needs.
            for _ in 0..4 {
                execute(proto, &sys, &mut g, NodeId(1), op);
            }
            let steady = execute(proto, &sys, &mut g, NodeId(1), op).cost;
            let is_update_write =
                matches!(kind, ProtocolKind::Dragon | ProtocolKind::Firefly) && op == OpKind::Write;
            let is_wt_write = matches!(
                kind,
                ProtocolKind::WriteThrough | ProtocolKind::WriteThroughV
            ) && op == OpKind::Write;
            // Quorum has no free steady state at all: every operation
            // runs a full majority round.
            if is_update_write || is_wt_write || kind == ProtocolKind::Quorum {
                // Write-through/update protocols pay per write, forever.
                assert!(steady > 0, "{kind:?} {op}: expected recurring cost");
            } else {
                assert_eq!(steady, 0, "{kind:?} {op}: expected a free steady state");
            }
        }
    }
}
