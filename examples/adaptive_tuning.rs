//! Self-tuning protocol selection (the paper's §6 future work): observe a
//! phase-shifting workload, estimate its parameters online, and let the
//! analytic model pick the cheapest coherence protocol per phase.
//!
//! ```text
//! cargo run --example adaptive_tuning
//! ```

use repmem::prelude::*;
use repmem_adaptive::switch_penalty;

fn main() {
    let sys = SystemParams::new(10, 200, 30);
    let phases: Vec<(&str, Scenario, usize)> = vec![
        (
            "private writes (ideal, p=0.6)",
            Scenario::ideal(0.6).unwrap(),
            15_000,
        ),
        (
            "read-mostly sharing (RD, p=0.02, σ=0.11, a=8)",
            Scenario::read_disturbance(0.02, 0.11, 8).unwrap(),
            15_000,
        ),
        (
            "four active writers (MC, p=0.5, β=4)",
            Scenario::multiple_centers(0.5, 4).unwrap(),
            15_000,
        ),
    ];

    let classifier = Classifier { sys };
    let mut estimator = WorkloadEstimator::new(1200);
    let mut current: Option<ProtocolKind> = None;
    let mut adaptive_cost = 0.0;
    let mut static_costs: Vec<(ProtocolKind, f64)> =
        ProtocolKind::ALL.into_iter().map(|k| (k, 0.0)).collect();

    println!(
        "adaptive DSM tuning — N={}, S={}, P={}\n",
        sys.n_clients, sys.s, sys.p
    );
    for (label, scenario, ops) in &phases {
        // Observe a prefix of the phase through the estimator.
        let mut sampler = ScenarioSampler::new(scenario, 1, 99);
        for _ in 0..4000 {
            let ev = sampler.next_event();
            estimator.observe(ev.node, ev.op);
        }
        let estimate = estimator.scenario().expect("observations made");
        let (choice, predicted) = classifier.best(&estimate);

        // Account for the switch and the phase cost (true scenario).
        let true_cost = classifier.cost(choice, scenario);
        if current.is_some() && current != Some(choice) {
            adaptive_cost += switch_penalty(&sys);
        }
        current = Some(choice);
        adaptive_cost += true_cost * *ops as f64;
        for (k, acc) in static_costs.iter_mut() {
            *acc += classifier.cost(*k, scenario) * *ops as f64;
        }
        println!(
            "phase: {label}\n  → selected {:<16} predicted acc {predicted:.3}, true acc {true_cost:.3}",
            choice.name()
        );
    }

    let (best_static, best_cost) = static_costs
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("eight protocols");
    println!(
        "\ntotal cost: adaptive {:.0} vs best static ({}) {:.0}",
        adaptive_cost,
        best_static.name(),
        best_cost
    );
    println!(
        "adaptation keeps {:.1} % of the best static protocol's traffic.",
        100.0 * adaptive_cost / best_cost
    );
    assert!(
        adaptive_cost < best_cost,
        "adaptation should win on shifting phases"
    );
}
