//! Quickstart: spin up a threaded DSM cluster, share data between nodes,
//! and compare the measured communication cost against the paper's
//! per-trace cost model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use repmem::prelude::*;

fn main() {
    // N = 4 clients + 1 sequencer; copy transfers cost S+1 = 65 units,
    // write-parameter transfers P+1 = 17 units, bare tokens 1 unit.
    let sys = SystemParams {
        n_clients: 4,
        s: 64,
        p: 16,
        m_objects: 8,
    };
    println!(
        "repmem quickstart — N={}, S={}, P={}, M={} objects",
        sys.n_clients, sys.s, sys.p, sys.m_objects
    );

    for kind in [
        ProtocolKind::WriteThrough,
        ProtocolKind::Berkeley,
        ProtocolKind::Dragon,
    ] {
        let cluster = Cluster::new(sys, kind);
        let alice = cluster.handle(NodeId(0));
        let bob = cluster.handle(NodeId(1));

        // Alice publishes and re-reads (read-your-writes); Bob observes
        // the value as soon as the coherence traffic lands — the write is
        // asynchronous for fire-and-forget and update protocols, so poll
        // briefly.
        alice
            .write(ObjectId(3), Bytes::from_static(b"hello, replicated world"))
            .unwrap();
        let again = alice.read(ObjectId(3)).unwrap();
        assert_eq!(&again[..], b"hello, replicated world");
        let mut seen = bob.read(ObjectId(3)).unwrap();
        for _ in 0..100 {
            if &seen[..] == b"hello, replicated world" {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            seen = bob.read(ObjectId(3)).unwrap();
        }
        assert_eq!(&seen[..], b"hello, replicated world");

        println!(
            "  {:<15} 1 write + 2 reads  →  {:>4} cost units over {} messages",
            kind.name(),
            cluster.total_cost(),
            cluster.total_messages()
        );
        let dump = cluster.shutdown().unwrap();
        assert!(dump.is_coherent(), "replicas diverged");
    }

    // The same numbers fall out of the paper's trace cost model: a
    // Write-Through client write costs P+N, and each of the two read
    // misses that follow (Alice's copy was self-invalidated, Bob's was
    // never populated) costs S+2 (paper §4.1).
    let wt_cost = (sys.p + sys.n_clients as u64) + 2 * (sys.s + 2);
    println!(
        "\nWrite-Through model: (P+N) + 2(S+2) = {wt_cost} — matches the measured cost above."
    );
}
