//! Transport stacks: run the same cluster over in-process channels and a
//! metered TCP loopback mesh, and reconcile the wire-level byte counters
//! with the paper's cost model.
//!
//! ```text
//! cargo run --example net_stack
//! ```

use bytes::Bytes;
use repmem::net::{InProcTransport, MeteredTransport, TcpTransport};
use repmem::prelude::*;

fn main() {
    let sys = SystemParams {
        n_clients: 3,
        s: 100,
        p: 30,
        m_objects: 4,
    };
    let kind = ProtocolKind::WriteOnce;
    println!(
        "repmem net stack — {} over N={}, S={}, P={}\n",
        kind.name(),
        sys.n_clients,
        sys.s,
        sys.p
    );

    // The paper's channel is an abstraction: any FIFO transport gives the
    // same costs. Run one workload over both backends, metered.
    run(sys, kind, "in-process", InProcTransport::new(sys.n_nodes()));
    run(
        sys,
        kind,
        "tcp loopback",
        TcpTransport::loopback(sys.n_nodes()).expect("loopback mesh"),
    );

    println!(
        "On both stacks the meter reconstructs the runtime's cost counter exactly — \
         the wire is an implementation detail."
    );
}

fn run(sys: SystemParams, kind: ProtocolKind, label: &str, transport: impl repmem::net::Transport) {
    let metered = MeteredTransport::new(transport);
    let meter = metered.stats();
    let cluster =
        Cluster::with_transport(sys, kind, ShardConfig::default(), metered).expect("cluster");
    let writer = cluster.handle(NodeId(0));
    let reader = cluster.handle(NodeId(2));
    for round in 0..8u32 {
        let obj = ObjectId(round % sys.m_objects as u32);
        writer
            .write(obj, Bytes::from(round.to_le_bytes().to_vec()))
            .unwrap();
        let _ = reader.read(obj).unwrap();
    }
    // Let fire-and-forget cascades drain before reading the counters.
    std::thread::sleep(std::time::Duration::from_millis(20));

    let total = meter.total();
    let [token, params, copy] = total.classes;
    println!("{label}:");
    println!(
        "  tokens   {:>3} msgs  {:>6} wire bytes   (model charge 1 each)",
        token.msgs, token.bytes
    );
    println!(
        "  params   {:>3} msgs  {:>6} wire bytes   (model charge P+1 = {} each)",
        params.msgs,
        params.bytes,
        sys.p + 1
    );
    println!(
        "  copies   {:>3} msgs  {:>6} wire bytes   (model charge S+1 = {} each)",
        copy.msgs,
        copy.bytes,
        sys.s + 1
    );
    let model = meter.model_cost(&sys);
    println!(
        "  meter → model cost {model}, cluster counted {} over {} messages\n",
        cluster.total_cost(),
        cluster.total_messages()
    );
    assert_eq!(model, cluster.total_cost(), "meter disagrees with runtime");
    assert_eq!(total.msgs(), cluster.total_messages());
    let dump = cluster.shutdown().unwrap();
    assert!(dump.is_coherent(), "replicas diverged");
}
