//! Compare all eight coherence protocols for a workload of your choice —
//! the paper's §5 methodology as a command-line tool.
//!
//! ```text
//! cargo run --example compare_protocols -- [p] [sigma] [a] [N] [S] [P]
//! cargo run --example compare_protocols -- 0.3 0.05 4 10 100 30
//! ```
//!
//! Prints the analytic steady-state average communication cost per
//! operation (chain engine + closed form) and a simulation cross-check
//! for every protocol, cheapest first.

use repmem::prelude::*;
use repmem_analytic::closed::closed_rd;

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let p = arg(1, 0.3);
    let sigma = arg(2, 0.05);
    let a = arg(3, 4.0) as usize;
    let sys = SystemParams::new(
        arg(4, 10.0) as usize,
        arg(5, 100.0) as u64,
        arg(6, 30.0) as u64,
    );

    let scenario = match Scenario::read_disturbance(p, sigma, a) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid workload (p={p}, σ={sigma}, a={a}): {e}");
            std::process::exit(1);
        }
    };
    println!(
        "Read disturbance: p={p}, σ={sigma}, a={a}; system: N={}, S={}, P={}\n",
        sys.n_clients, sys.s, sys.p
    );
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>8}",
        "protocol", "acc (engine)", "acc (closed)", "acc (sim)", "states"
    );

    let mut rows: Vec<(ProtocolKind, f64, f64, f64, usize)> = ProtocolKind::ALL
        .into_iter()
        .map(|kind| {
            let engine = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default())
                .expect("chain analysis");
            let closed = closed_rd(kind, &sys, p, sigma, a);
            let sim = simulate(
                &SimConfig {
                    sys,
                    protocol: kind,
                    mode: IssueMode::Serialized,
                    warmup_ops: 500,
                    measured_ops: 4000,
                    seed: 11,
                },
                &scenario,
            )
            .acc();
            (kind, engine.acc, closed, sim, engine.n_states)
        })
        .collect();
    rows.sort_by(|l, r| l.1.total_cmp(&r.1));

    for (kind, engine, closed, sim, states) in &rows {
        println!(
            "{:<16} {:>12.4} {:>12.4} {:>12.4} {:>8}",
            kind.name(),
            engine,
            closed,
            sim,
            states
        );
    }
    let (best, acc, ..) = rows[0];
    println!(
        "\ncheapest: {} at {acc:.4} cost units per operation",
        best.name()
    );
}
