//! A parallel grid-relaxation "application" on the DSM — the kind of
//! workload the paper's introduction motivates. Each worker owns a strip
//! of rows; neighbouring workers read each other's boundary rows every
//! sweep. The example replays the access trace through the discrete-event
//! simulator under every protocol, then runs the winner live on the
//! threaded cluster.
//!
//! ```text
//! cargo run --example grid_solver
//! ```

use bytes::Bytes;
use repmem::prelude::*;
use repmem_workload::apps::{grid_objects, grid_relaxation};

fn main() {
    let workers = 4usize;
    let rows_per_worker = 4usize;
    let sweeps = 10usize;
    let sys = SystemParams {
        n_clients: workers,
        s: 256, // a row of the grid
        p: 8,   // a point update
        m_objects: grid_objects(workers, rows_per_worker),
    };
    let trace = grid_relaxation(workers, rows_per_worker, sweeps);
    println!(
        "grid relaxation: {workers} workers × {rows_per_worker} rows, {sweeps} sweeps — {} accesses over {} row objects\n",
        trace.len(),
        sys.m_objects
    );

    // 1. Replay the exact trace under each protocol in the simulator.
    println!(
        "{:<16} {:>12} {:>14}",
        "protocol", "total cost", "cost/operation"
    );
    let mut best = (ProtocolKind::WriteThrough, u64::MAX);
    for kind in ProtocolKind::ALL {
        let report = replay(
            &SimConfig {
                sys,
                protocol: kind,
                mode: IssueMode::Serialized,
                warmup_ops: 0,
                measured_ops: trace.len(),
                seed: 1,
            },
            &trace,
        );
        assert!(report.coherence.is_coherent(), "{kind:?} diverged");
        println!(
            "{:<16} {:>12} {:>14.3}",
            kind.name(),
            report.total_cost,
            report.acc()
        );
        if report.total_cost < best.1 {
            best = (kind, report.total_cost);
        }
    }
    println!("\nbest for this sweep pattern: {}\n", best.0.name());

    // 2. Run the winner live: worker threads relax their strips on the
    //    threaded cluster.
    let cluster = Cluster::new(sys, best.0);
    let threads: Vec<_> = (0..workers)
        .map(|w| {
            let h = cluster.handle(NodeId(w as u16));
            std::thread::spawn(move || {
                let row = |wk: usize, r: usize| ObjectId((wk * rows_per_worker + r) as u32);
                for sweep in 0..sweeps {
                    // Read the neighbours' facing boundary rows.
                    if w > 0 {
                        let _ = h.read(row(w - 1, rows_per_worker - 1)).unwrap();
                    }
                    if w + 1 < workers {
                        let _ = h.read(row(w + 1, 0)).unwrap();
                    }
                    // Relax and publish the owned strip.
                    for r in 0..rows_per_worker {
                        let _ = h.read(row(w, r)).unwrap();
                        h.write(row(w, r), Bytes::from(format!("w{w} r{r} sweep{sweep}")))
                            .unwrap();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("worker");
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    let cost = cluster.total_cost();
    let msgs = cluster.total_messages();
    let dump = cluster.shutdown().unwrap();
    assert!(dump.is_coherent(), "live run diverged");
    println!(
        "live run under {}: {} cost units over {} messages — replicas coherent.",
        best.0.name(),
        cost,
        msgs
    );
}
