//! End-to-end reproduction of the checkable claims of the paper's §5,
//! exercised through the public facade: closed forms, chain engine and
//! simulator must all tell the same story.

use repmem::prelude::*;
use repmem_analytic::closed::{closed_rd, ideal};
use repmem_analytic::crossover::{cheaper_rd, crossover_p, wt_vs_wtv_line};

/// §5.1: "For p=0 all coherence protocols incur acc=0."
#[test]
fn all_protocols_free_without_writes() {
    let sys = SystemParams::figure5();
    for kind in ProtocolKind::ALL {
        assert_eq!(closed_rd(kind, &sys, 0.0, 0.05, 10), 0.0, "{kind:?} closed");
        let scenario = Scenario::read_disturbance(0.0, 0.05, 10).unwrap();
        let engine = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default()).unwrap();
        assert!(engine.acc.abs() < 1e-9, "{kind:?} engine: {}", engine.acc);
    }
}

/// §5.1: ideal-workload limits for every protocol.
#[test]
fn ideal_workload_limits() {
    let sys = SystemParams::new(12, 300, 25);
    let (n, s, pc) = (sys.n_clients as f64, sys.s as f64, sys.p as f64);
    for p in [0.15, 0.5, 0.85] {
        let scenario = Scenario::ideal(p).unwrap();
        for kind in ProtocolKind::ALL {
            let engine = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default())
                .unwrap()
                .acc;
            let expect = ideal(kind, &sys, p);
            assert!(
                (engine - expect).abs() < 1e-8,
                "{kind:?} at p={p}: engine {engine} vs §5.1 limit {expect}"
            );
        }
        // The §5.1 formulas themselves.
        assert!(
            (ideal(ProtocolKind::WriteThrough, &sys, p) - p * ((1.0 - p) * (s + 2.0) + pc + n))
                .abs()
                < 1e-12
        );
        assert!((ideal(ProtocolKind::WriteThroughV, &sys, p) - p * (pc + n + 2.0)).abs() < 1e-12);
        assert!((ideal(ProtocolKind::Dragon, &sys, p) - p * n * (pc + 1.0)).abs() < 1e-12);
        assert!((ideal(ProtocolKind::Firefly, &sys, p) - p * (n * (pc + 1.0) + 1.0)).abs() < 1e-12);
    }
}

/// §5.1: Berkeley is the cheapest of the invalidation-family protocols
/// under read disturbance, and Illinois never loses to Synapse.
#[test]
fn dominance_relations() {
    let sys = SystemParams::figure5();
    let a = 10;
    for pi in 1..=9 {
        for si in 1..=9 {
            let p = pi as f64 / 10.0;
            let sigma = si as f64 / 10.0 * (1.0 - p) / a as f64;
            let b = closed_rd(ProtocolKind::Berkeley, &sys, p, sigma, a);
            for other in [
                ProtocolKind::WriteThrough,
                ProtocolKind::WriteThroughV,
                ProtocolKind::WriteOnce,
                ProtocolKind::Illinois,
                ProtocolKind::Synapse,
            ] {
                assert!(b <= closed_rd(other, &sys, p, sigma, a) + 1e-9);
            }
            assert!(
                closed_rd(ProtocolKind::Illinois, &sys, p, sigma, a)
                    <= closed_rd(ProtocolKind::Synapse, &sys, p, sigma, a) + 1e-9
            );
        }
    }
}

/// §5.1: the Write-Through / Write-Through-V crossover lies exactly on
/// the printed line p = −aσ·S/(S+2) + S/(S+2).
#[test]
fn wt_wtv_crossover_line() {
    let sys = SystemParams::new(30, 1000, 40);
    for (sigma, a) in [(0.01, 3), (0.03, 5), (0.0, 1)] {
        let line = wt_vs_wtv_line(&sys, sigma, a);
        let found = crossover_p(
            ProtocolKind::WriteThrough,
            ProtocolKind::WriteThroughV,
            &sys,
            sigma,
            a,
            1e-6,
            1.0 - a as f64 * sigma - 1e-6,
        )
        .expect("crossover exists");
        assert!(
            (found - line).abs() < 1e-6,
            "σ={sigma}, a={a}: {found} vs line {line}"
        );
    }
}

/// §5.1: Berkeley always beats Dragon when N·P > S+2; otherwise Dragon
/// wins a low-p region bounded by a line through the origin.
#[test]
fn dragon_berkeley_structure() {
    // N·P > S+2: Berkeley dominates everywhere.
    let sys = SystemParams::new(50, 100, 30);
    for pi in 1..=9 {
        let p = pi as f64 / 10.0;
        let sigma = 0.4 * (1.0 - p);
        assert_eq!(
            cheaper_rd(
                ProtocolKind::Berkeley,
                ProtocolKind::Dragon,
                &sys,
                p,
                sigma,
                1
            ),
            Some(ProtocolKind::Berkeley)
        );
    }
    // N·P < S+2: Dragon wins at low p.
    let sys = SystemParams::figure5();
    assert_eq!(
        cheaper_rd(
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            &sys,
            0.005,
            0.01,
            1
        ),
        Some(ProtocolKind::Dragon)
    );
    assert_eq!(
        cheaper_rd(
            ProtocolKind::Dragon,
            ProtocolKind::Berkeley,
            &sys,
            0.5,
            0.01,
            1
        ),
        Some(ProtocolKind::Berkeley)
    );
}

/// Table 7's headline, end to end: analysis vs concurrent simulation with
/// the paper's exact configuration stays within ±8 % on non-trivial
/// cells.
#[test]
fn table7_bound_holds() {
    let sys = SystemParams::table7();
    for kind in [ProtocolKind::WriteOnce, ProtocolKind::WriteThroughV] {
        for (p, sigma) in [(0.2, 0.2), (0.4, 0.2), (0.6, 0.2), (0.4, 0.0), (0.8, 0.1)] {
            let scenario = Scenario::read_disturbance(p, sigma, 2).unwrap();
            let acc_a = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default())
                .unwrap()
                .acc;
            if acc_a < 0.5 {
                continue;
            }
            let acc_s = simulate(
                &SimConfig {
                    sys,
                    protocol: kind,
                    mode: IssueMode::Concurrent { mean_think: 64.0 },
                    warmup_ops: 500,
                    measured_ops: 1500,
                    seed: 0xBEEF,
                },
                &scenario,
            )
            .acc();
            let disc = 100.0 * (acc_a - acc_s).abs() / acc_a;
            assert!(
                disc < 8.0,
                "{kind:?} (p={p}, σ={sigma}): discrepancy {disc:.2} %"
            );
        }
    }
}
