//! The workspace's central consistency property: the closed forms, the
//! Markov chain engine and the discrete-event simulator agree — for every
//! protocol, across all three workload deviations, including seeded
//! random scenarios.

use rand::{Rng, SeedableRng};
use repmem::prelude::*;
use repmem_analytic::closed::closed_rd;

fn sim_acc(kind: ProtocolKind, sys: &SystemParams, scenario: &Scenario, seed: u64) -> f64 {
    simulate(
        &SimConfig {
            sys: *sys,
            protocol: kind,
            mode: IssueMode::Serialized,
            warmup_ops: 400,
            measured_ops: 6000,
            seed,
        },
        scenario,
    )
    .acc()
}

#[test]
fn all_deviations_all_protocols() {
    let sys = SystemParams::new(6, 80, 20);
    let scenarios = [
        Scenario::ideal(0.4).unwrap(),
        Scenario::read_disturbance(0.3, 0.08, 3).unwrap(),
        Scenario::write_disturbance(0.25, 0.06, 2).unwrap(),
        Scenario::multiple_centers(0.4, 3).unwrap(),
    ];
    for scenario in &scenarios {
        for kind in ProtocolKind::ALL {
            let engine = analyze(protocol(kind), &sys, scenario, AnalyzeOpts::default())
                .unwrap()
                .acc;
            let sim = sim_acc(kind, &sys, scenario, 31);
            if engine < 0.5 {
                assert!(sim < 1.0, "{kind:?}: engine {engine} vs sim {sim}");
            } else {
                let rel = (engine - sim).abs() / engine;
                assert!(
                    rel < 0.07,
                    "{kind:?}: engine {engine} vs sim {sim} (rel {rel:.4})"
                );
            }
        }
    }
}

#[test]
fn trace_probability_agreement_for_write_through() {
    // Paper §4.3: the analytic trace probabilities π_h match the
    // simulator's empirical frequencies, per trace class.
    let sys = SystemParams::new(4, 60, 15);
    let scenario = Scenario::read_disturbance(0.35, 0.1, 2).unwrap();
    let engine = analyze(
        protocol(ProtocolKind::WriteThrough),
        &sys,
        &scenario,
        AnalyzeOpts::default(),
    )
    .unwrap();
    let report = simulate(
        &SimConfig {
            sys,
            protocol: ProtocolKind::WriteThrough,
            mode: IssueMode::Serialized,
            warmup_ops: 500,
            measured_ops: 30_000,
            seed: 4,
        },
        &scenario,
    );
    let emp = report.trace_probs();
    for (sig, pi) in &engine.trace_probs {
        if *pi < 0.02 {
            continue;
        }
        let e = emp.get(sig).copied().unwrap_or(0.0);
        assert!(
            (e - pi).abs() < 0.015,
            "{sig}: empirical {e:.4} vs analytic {pi:.4}"
        );
    }
}

/// Deterministic replacement for the former property test: 12 seeded
/// random read-disturbance scenarios checked across all three layers.
#[test]
fn random_rd_scenarios_agree() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x3_1a7e5);
    let mut checked = 0usize;
    while checked < 12 {
        let p = 0.05 + 0.55 * rng.random::<f64>();
        let sigma = 0.005 + 0.055 * rng.random::<f64>();
        let a = rng.random_range(1usize..4);
        let seed = rng.random_range(0u64..1000);
        if p + a as f64 * sigma >= 0.95 {
            continue;
        }
        checked += 1;
        let sys = SystemParams::new(5, 50, 10);
        let scenario = Scenario::read_disturbance(p, sigma, a).unwrap();
        const MEASURED_OPS: f64 = 6000.0;
        for kind in ProtocolKind::ALL {
            let closed = closed_rd(kind, &sys, p, sigma, a);
            let result = analyze(protocol(kind), &sys, &scenario, AnalyzeOpts::default()).unwrap();
            let engine = result.acc;
            assert!(
                (closed - engine).abs() < 1e-7 * (1.0 + engine),
                "{kind:?}: closed {closed} vs engine {engine}"
            );
            // Statistics-aware simulation check: the measured acc is a
            // mean of MEASURED_OPS i.i.d. trace costs whose distribution
            // the engine knows exactly, so a 5σ band is a sound bound
            // (rare expensive traces make fixed relative bands useless).
            let var: f64 = result
                .trace_probs
                .iter()
                .map(|(sig, pi)| pi * (sig.cost as f64 - engine).powi(2))
                .sum();
            let tol = 5.0 * (var / MEASURED_OPS).sqrt() + 1e-6;
            let sim = sim_acc(kind, &sys, &scenario, seed);
            assert!(
                (engine - sim).abs() < tol,
                "{kind:?}: engine {engine} vs sim {sim} (5σ tolerance {tol:.4})"
            );
        }
    }
}
