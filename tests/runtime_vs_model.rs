//! The threaded runtime is metered by the same cost model as the
//! analysis: driving the live cluster through a deterministic operation
//! sequence must accumulate exactly the cost the synchronous oracle
//! predicts for that sequence.

use bytes::Bytes;
use repmem::prelude::*;
use repmem_analytic::oracle::Global;

/// Wait until the cluster's cost counter is quiescent (in-flight
/// fire-and-forget cascades drained).
fn settle(cluster: &Cluster) -> u64 {
    let mut last = cluster.total_cost();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(3));
        let now = cluster.total_cost();
        if now == last {
            return now;
        }
        last = now;
    }
}

#[test]
fn serial_usage_costs_match_the_oracle_exactly() {
    let sys = SystemParams {
        n_clients: 4,
        s: 64,
        p: 16,
        m_objects: 1,
    };
    let obj = ObjectId(0);
    // A deterministic mixed sequence touching clients and the sequencer.
    let seq: Vec<(NodeId, OpKind)> = vec![
        (NodeId(0), OpKind::Read),
        (NodeId(0), OpKind::Write),
        (NodeId(0), OpKind::Write),
        (NodeId(1), OpKind::Read),
        (NodeId(0), OpKind::Read),
        (NodeId(2), OpKind::Write),
        (NodeId(1), OpKind::Read),
        (sys.home(), OpKind::Read),
        (sys.home(), OpKind::Write),
        (NodeId(3), OpKind::Read),
        (NodeId(0), OpKind::Write),
    ];
    for kind in ProtocolKind::ALL {
        // Oracle prediction.
        let proto = protocol(kind);
        let mut g = Global::initial(proto, &sys);
        let mut predicted = 0u64;
        for &(node, op) in &seq {
            predicted += execute(proto, &sys, &mut g, node, op).cost;
        }

        // Live run, one operation at a time, settling between operations
        // so the execution is serialized exactly like the oracle.
        let cluster = Cluster::new(sys, kind);
        for &(node, op) in &seq {
            let h = cluster.handle(node);
            match op {
                OpKind::Read => {
                    let _ = h.read(obj).unwrap();
                }
                OpKind::Write => h.write(obj, Bytes::from_static(b"v")).unwrap(),
            }
            settle(&cluster);
        }
        let measured = settle(&cluster);
        let dump = cluster.shutdown().unwrap();
        assert_eq!(
            measured, predicted,
            "{kind:?}: live cluster cost {measured} vs oracle {predicted}"
        );
        assert!(dump.is_coherent(), "{kind:?}: replicas diverged");
    }
}

#[test]
fn multi_object_isolation() {
    // Traffic on one object never touches another object's replicas.
    let sys = SystemParams {
        n_clients: 3,
        s: 32,
        p: 8,
        m_objects: 3,
    };
    let cluster = Cluster::new(sys, ProtocolKind::Illinois);
    let h0 = cluster.handle(NodeId(0));
    let h1 = cluster.handle(NodeId(1));
    h0.write(ObjectId(0), Bytes::from_static(b"zero")).unwrap();
    h1.write(ObjectId(1), Bytes::from_static(b"one")).unwrap();
    assert_eq!(&h0.read(ObjectId(0)).unwrap()[..], b"zero");
    assert_eq!(&h1.read(ObjectId(1)).unwrap()[..], b"one");
    // Object 2 was never written: every node still has the initial empty
    // copy.
    assert!(h0.read(ObjectId(2)).unwrap().is_empty());
    let dump = cluster.shutdown().unwrap();
    assert!(dump.is_coherent());
}
