//! Application-shaped workloads (grid relaxation, producer/consumer,
//! work queue) through the full stack: replayed in the simulator under
//! every protocol, with coherence audits and qualitative cost checks.

use repmem::prelude::*;
use repmem_workload::apps;

fn replay_cost(kind: ProtocolKind, sys: SystemParams, trace: &[OpEvent]) -> u64 {
    let report = replay(
        &SimConfig {
            sys,
            protocol: kind,
            mode: IssueMode::Serialized,
            warmup_ops: 0,
            measured_ops: trace.len(),
            seed: 5,
        },
        trace,
    );
    assert!(report.coherence.is_coherent(), "{kind:?} diverged");
    assert_eq!(report.stale_reads, 0, "{kind:?} returned stale data");
    report.total_cost
}

#[test]
fn grid_relaxation_all_protocols_coherent() {
    let trace = apps::grid_relaxation(4, 3, 6);
    let sys = SystemParams {
        n_clients: 4,
        s: 128,
        p: 4,
        m_objects: apps::grid_objects(4, 3),
    };
    let mut costs = Vec::new();
    for kind in ProtocolKind::ALL {
        costs.push((kind, replay_cost(kind, sys, &trace)));
    }
    // Mostly-private rows with light boundary sharing: the ownership
    // protocols must beat plain Write-Through (which pays P+N for every
    // single write).
    let wt = costs
        .iter()
        .find(|(k, _)| *k == ProtocolKind::WriteThrough)
        .unwrap()
        .1;
    for kind in [
        ProtocolKind::Berkeley,
        ProtocolKind::Illinois,
        ProtocolKind::WriteOnce,
    ] {
        let c = costs.iter().find(|(k, _)| *k == kind).unwrap().1;
        assert!(
            c < wt,
            "{kind:?} ({c}) should beat Write-Through ({wt}) on the grid"
        );
    }
}

#[test]
fn producer_consumer_prefers_updates() {
    // Strictly alternating write/read on each slot: every invalidation
    // protocol pays a full re-fetch per item (S-dominated), the update
    // protocols only ship the parameters (P-dominated).
    let trace = apps::producer_consumer(4, 60);
    let sys = SystemParams {
        n_clients: 3,
        s: 512,
        p: 8,
        m_objects: 4,
    };
    let dragon = replay_cost(ProtocolKind::Dragon, sys, &trace);
    for kind in [
        ProtocolKind::WriteThrough,
        ProtocolKind::Synapse,
        ProtocolKind::Berkeley,
        ProtocolKind::Illinois,
    ] {
        let c = replay_cost(kind, sys, &trace);
        assert!(
            dragon < c,
            "Dragon ({dragon}) should beat {kind:?} ({c}) on producer/consumer with large S"
        );
    }
}

#[test]
fn work_queue_runs_under_every_protocol() {
    let trace = apps::work_queue(3, 40, 17);
    let sys = SystemParams {
        n_clients: 4,
        s: 64,
        p: 32,
        m_objects: apps::work_queue_objects(3),
    };
    for kind in ProtocolKind::ALL {
        let cost = replay_cost(kind, sys, &trace);
        assert!(cost > 0, "{kind:?}: a shared queue cannot be free");
    }
}

#[test]
fn replayed_costs_are_deterministic() {
    let trace = apps::grid_relaxation(3, 2, 4);
    let sys = SystemParams {
        n_clients: 3,
        s: 50,
        p: 10,
        m_objects: apps::grid_objects(3, 2),
    };
    let a = replay_cost(ProtocolKind::Synapse, sys, &trace);
    let b = replay_cost(ProtocolKind::Synapse, sys, &trace);
    assert_eq!(a, b);
}
